"""Unit tests for dynamic recompilation."""

import pytest

from repro.cluster import ResourceConfig
from repro.common import DataType, MatrixCharacteristics
from repro.compiler import hops as H
from repro.compiler.pipeline import compile_program
from repro.compiler.recompile import (
    make_env_from_states,
    recompile_block,
    recompile_predicate,
)

# the table() producer and its consumers live in separate blocks (the
# if splits them), so runtime knowledge about Y resolves the consumer
SOURCE = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
k = ncol(Y)
if (k > 0) {
  B = matrix(0, rows=ncol(X), cols=k)
  G = t(X) %*% Y + B
  s = sum(G)
  print(s)
}
"""

META = {
    "X": MatrixCharacteristics(10**5, 100, 10**7),
    "y": MatrixCharacteristics(10**5, 1, 10**5),
}
ARGS = {"X": "X", "y": "y"}


def compiled_with_unknowns(cp_mb=8192):
    return compile_program(SOURCE, ARGS, META, ResourceConfig(cp_mb, 1024))


def runtime_states(k=3):
    """Actual characteristics as the runtime would know them."""
    return {
        "X": (DataType.MATRIX, MatrixCharacteristics(10**5, 100, 10**7), None),
        "y": (DataType.MATRIX, MatrixCharacteristics(10**5, 1, 10**5), None),
        "Y": (DataType.MATRIX, MatrixCharacteristics(10**5, k, 10**5), None),
        "k": (DataType.SCALAR, MatrixCharacteristics(0, 0, 0), k),
    }


class TestEnvConstruction:
    def test_matrix_states(self):
        env = make_env_from_states(runtime_states())
        assert env.get("Y").mc.cols == 3
        assert env.get("Y").data_type is DataType.MATRIX

    def test_scalar_states_carry_constants(self):
        env = make_env_from_states({
            "k": (DataType.SCALAR, MatrixCharacteristics(0, 0, 0), 7),
        })
        assert env.get("k").const == 7


class TestBlockRecompilation:
    def find_unknown_block(self, compiled):
        # the consumer block (inside the if) reads Y via a transient read
        from repro.compiler import hops as HH

        candidates = [
            b for b in compiled.last_level_blocks() if b.requires_recompile
        ]
        for block in candidates:
            reads = [
                h for h in HH.iter_dag(block.hop_roots)
                if isinstance(h, HH.DataOp) and h.name == "Y" and h.is_read
            ]
            if reads:
                return block
        raise AssertionError("expected an unknown consumer block")

    def test_initial_compile_has_unknowns(self):
        compiled = compiled_with_unknowns()
        block = self.find_unknown_block(compiled)
        unknown_hops = [
            h for h in H.iter_dag(block.hop_roots)
            if h.is_matrix and not h.mc.dims_known
        ]
        assert unknown_hops

    def test_recompile_resolves_sizes(self):
        compiled = compiled_with_unknowns()
        block = self.find_unknown_block(compiled)
        env = make_env_from_states(runtime_states(k=4))
        recompile_block(compiled, block, ResourceConfig(8192, 1024), env)
        mm = [h for h in H.iter_dag(block.hop_roots)
              if isinstance(h, H.AggBinaryOp)]
        assert mm[0].mc.cols == 4
        # every matrix hop in the consumer block is now sized
        assert all(
            h.mc.dims_known
            for h in H.iter_dag(block.hop_roots)
            if h.is_matrix
        )

    def test_recompile_changes_exec_decisions(self):
        compiled = compiled_with_unknowns(cp_mb=8192)
        block = self.find_unknown_block(compiled)
        mm_before = [
            h for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.AggBinaryOp)
        ][0]
        from repro.common import ExecType

        assert mm_before.exec_type is ExecType.MR  # unknown -> MR
        env = make_env_from_states(runtime_states())
        plan = recompile_block(compiled, block, ResourceConfig(8192, 1024),
                               env)
        mm_after = [
            h for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.AggBinaryOp)
        ][0]
        assert mm_after.exec_type is ExecType.CP  # fits 5.7 GB budget

    def test_recompile_counts_in_stats(self):
        compiled = compiled_with_unknowns()
        block = self.find_unknown_block(compiled)
        before = compiled.stats.block_compilations
        recompile_block(compiled, block, ResourceConfig(8192, 1024),
                        make_env_from_states(runtime_states()))
        assert compiled.stats.block_compilations == before + 1

    def test_dynamic_rewrites_reapplied(self):
        # sum(v^2) with v's size known only at runtime gets the tsmm
        # rewrite during recompilation
        source = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
k = ncol(Y)
if (k > 0) {
  v = rowSums(Y)
  n2 = sum(v ^ 2)
  print(n2)
}
"""
        compiled = compile_program(source, ARGS, META,
                                   ResourceConfig(8192, 1024))
        block = self.find_unknown_block(compiled)
        env = make_env_from_states(runtime_states())
        recompile_block(compiled, block, ResourceConfig(8192, 1024), env)
        matmults = [
            h for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.AggBinaryOp)
        ]
        assert matmults  # t(v) %*% v introduced dynamically


class TestPredicateRecompilation:
    def test_predicate_replanned(self):
        source = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
while (sum(Y) > 10) {
  Y = Y * 0.5
}
"""
        compiled = compile_program(source, ARGS, META,
                                   ResourceConfig(8192, 1024))
        from repro.compiler import statement_blocks as SB

        loop = [
            b for b in compiled.block_program.blocks
            if isinstance(b, SB.WhileBlock)
        ][0]
        env = make_env_from_states(runtime_states())
        plan = recompile_predicate(compiled, loop.predicate,
                                   ResourceConfig(8192, 1024), env)
        assert plan.instructions
        assert plan.result is not None
