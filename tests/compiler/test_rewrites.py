"""Unit tests for the HOP rewrite passes."""

from repro.common import MatrixCharacteristics
from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB
from repro.compiler.hop_builder import build_hops
from repro.compiler.pipeline import build_and_analyze
from repro.compiler.rewrites import (
    apply_static_rewrites,
    eliminate_common_subexpressions,
    fold_constants,
    optimize_matmult_chains,
    remove_constant_branches,
)
from repro.compiler.size_propagation import propagate_sizes
from repro.compiler.statement_blocks import build_program
from repro.dml import parse

META = {"X": MatrixCharacteristics(1000, 20, 20000),
        "y": MatrixCharacteristics(1000, 1, 1000)}
ARGS = {"X": "X", "y": "y"}


def analyzed(source, meta=META, args=ARGS):
    """Run the full resource-independent front half."""
    return build_and_analyze(source, args, meta)


def raw(source, meta=META, args=ARGS):
    program = build_program(parse(source), args)
    build_hops(program)
    propagate_sizes(program, meta)
    return program


def hops_of(block, hop_type=None):
    out = list(H.iter_dag(block.hop_roots))
    if hop_type is not None:
        out = [h for h in out if isinstance(h, hop_type)]
    return out


class TestConstantFolding:
    def test_scalar_tree_collapses_to_literal(self):
        program = raw("a = 2 * 3 + 4\nb = a")
        program.blocks[0].hop_roots = fold_constants(
            program.blocks[0].hop_roots
        )
        writes = [
            h
            for h in hops_of(program.blocks[0], H.DataOp)
            if h.kind is H.DataOpKind.TRANSIENT_WRITE and h.name == "a"
        ]
        assert isinstance(writes[0].inputs[0], H.LiteralOp)
        assert writes[0].inputs[0].value == 10

    def test_cast_of_matrix_not_folded(self):
        program = raw("X = read($X)\ns = as.scalar(X[1, 1]) + 1")
        roots = fold_constants(program.blocks[0].hop_roots)
        casts = [
            h
            for h in H.iter_dag(roots)
            if isinstance(h, H.UnaryOp) and h.op is H.OpCode.CAST_AS_SCALAR
        ]
        assert casts  # still present


class TestBranchRemoval:
    def test_constant_true_branch_inlined(self):
        program = raw("a = 1\nif (a == 1) { b = 2 } else { b = 3 }")
        remove_constant_branches(program)
        assert all(
            not isinstance(block, SB.IfBlock) for block in program.blocks
        )

    def test_constant_false_keeps_else(self):
        source = "a = 0\nif (a == 1) { b = 2 } else { b = 3 }\nc = b"
        compiled = analyzed(source, {}, {})
        env = propagate_sizes(compiled, {})
        assert env.get("b").const == 3

    def test_data_dependent_branch_kept(self):
        program = analyzed(
            "X = read($X)\nm = sum(X)\nif (m > 0) { b = 1 }", META, ARGS
        )
        assert any(isinstance(block, SB.IfBlock) for block in program.blocks)

    def test_false_while_removed(self):
        # the predicate must be loop-invariant for removal: a loop that
        # updates its own predicate variable is (correctly) kept
        program = raw("a = 0\nb = 0\nwhile (a > 0) { b = b + 1 }")
        remove_constant_branches(program)
        assert all(
            not isinstance(block, SB.WhileBlock) for block in program.blocks
        )

    def test_variant_while_predicate_not_removed(self):
        program = raw("a = 0\nwhile (a > 0) { a = a - 1 }")
        remove_constant_branches(program)
        assert any(
            isinstance(block, SB.WhileBlock) for block in program.blocks
        )

    def test_zero_trip_for_removed(self):
        program = analyzed("s = 0\nfor (i in 5:1) { s = s + i }", {}, {})
        assert all(
            not isinstance(block, SB.ForBlock) for block in program.blocks
        )

    def test_intercept_pattern_from_paper(self):
        """The paper's Appendix B example: $icpt = 0 removes the branch,
        enabling unconditional size propagation."""
        source = """
X = read($X)
intercept = ifdef($icpt, 0)
if (intercept == 1) {
  X = append(X, matrix(1, rows=nrow(X), cols=1))
}
Z = t(X) %*% X
"""
        program = analyzed(source)
        assert all(
            not isinstance(block, SB.IfBlock) for block in program.blocks
        )
        env = propagate_sizes(program, META)
        assert env.get("Z").mc.cols == 20


class TestCSE:
    def test_identical_subtrees_merged(self):
        program = raw("X = read($X)\na = sum(t(X) %*% X)\nb = sum(t(X) %*% X)")
        roots = eliminate_common_subexpressions(program.blocks[0].hop_roots)
        matmults = [h for h in H.iter_dag(roots) if isinstance(h, H.AggBinaryOp)]
        assert len(matmults) == 1

    def test_writes_never_merged(self):
        program = raw("a = 1\nb = 1")
        roots = eliminate_common_subexpressions(program.blocks[0].hop_roots)
        writes = [
            h
            for h in H.iter_dag(roots)
            if isinstance(h, H.DataOp)
            and h.kind is H.DataOpKind.TRANSIENT_WRITE
        ]
        assert len(writes) == 2

    def test_rand_not_merged(self):
        program = raw("A = rand(rows=3, cols=3)\nB = rand(rows=3, cols=3)")
        roots = eliminate_common_subexpressions(program.blocks[0].hop_roots)
        gens = [h for h in H.iter_dag(roots) if isinstance(h, H.DataGenOp)]
        assert len(gens) == 2

    def test_constant_matrix_gen_merged(self):
        program = raw(
            "A = matrix(0, rows=3, cols=3)\nB = matrix(0, rows=3, cols=3)"
        )
        roots = eliminate_common_subexpressions(program.blocks[0].hop_roots)
        gens = [h for h in H.iter_dag(roots) if isinstance(h, H.DataGenOp)]
        assert len(gens) == 1


class TestAlgebraic:
    def test_self_mult_becomes_power(self):
        program = analyzed("X = read($X)\ns = colSums(X * X)")
        pows = [
            h
            for block in program.blocks
            for h in hops_of(block, H.BinaryOp)
            if h.op is H.OpCode.POW
        ]
        assert pows

    def test_double_transpose_removed(self):
        program = analyzed("X = read($X)\nZ = t(t(X))")
        transposes = [
            h
            for block in program.blocks
            for h in hops_of(block, H.ReorgOp)
        ]
        assert not transposes

    def test_mult_by_one_removed(self):
        program = analyzed("X = read($X)\nZ = X * 1")
        mults = [
            h
            for block in program.blocks
            for h in hops_of(block, H.BinaryOp)
            if h.op is H.OpCode.MULT
        ]
        assert not mults

    def test_sum_of_squared_vector_to_tsmm(self):
        """The paper's Appendix B rewrite: sum(s^2) -> as.scalar(t(s)%*%s)
        for column vectors."""
        program = analyzed("y = read($y)\nn2 = sum(y ^ 2)", META, ARGS)
        matmults = [
            h
            for block in program.blocks
            for h in hops_of(block, H.AggBinaryOp)
        ]
        assert matmults

    def test_sum_of_squares_matrix_not_rewritten(self):
        program = analyzed("X = read($X)\nn2 = sum(X ^ 2)")
        matmults = [
            h
            for block in program.blocks
            for h in hops_of(block, H.AggBinaryOp)
        ]
        assert not matmults

    def test_ternary_aggregate_fusion(self):
        """sum(a*b*c) on conforming vectors -> tak+* (paper lines 29/30)."""
        source = """
y = read($y)
a = y + 1
b = y * 2
h = sum(a * y * b)
"""
        program = analyzed(source)
        taks = [
            h
            for block in program.blocks
            for h in hops_of(block, H.TernaryAggOp)
        ]
        assert len(taks) == 1


class TestMMChain:
    def test_chain_reordered_for_vector(self):
        # (X %*% Y) %*% v is cheaper as X %*% (Y %*% v)
        meta = {
            "X": MatrixCharacteristics(500, 500, 250000),
            "y": MatrixCharacteristics(500, 1, 500),
        }
        source = "X = read($X)\ny = read($y)\nr = X %*% X %*% y"
        program = build_program(parse(source), ARGS)
        build_hops(program)
        propagate_sizes(program, meta)
        roots = optimize_matmult_chains(program.blocks[0].hop_roots)
        propagate_sizes(program, meta)
        top = [
            h
            for h in H.iter_dag(roots)
            if isinstance(h, H.AggBinaryOp)
            and not any(
                isinstance(p, H.AggBinaryOp)
                for p in H.build_parent_map(roots).get(h.hop_id, [])
            )
        ][0]
        # optimal order multiplies X with the (500 x 1) intermediate
        assert isinstance(top.inputs[1], H.AggBinaryOp)

    def test_unknown_dims_left_alone(self):
        source = """
X = read($X)
Y = table(seq(1, nrow(X)), y)
r = X %*% Y %*% Y
"""
        program = raw(source)
        before = [
            h
            for h in H.iter_dag(program.blocks[0].hop_roots)
            if isinstance(h, H.AggBinaryOp)
        ]
        roots = optimize_matmult_chains(program.blocks[0].hop_roots)
        after = [
            h for h in H.iter_dag(roots) if isinstance(h, H.AggBinaryOp)
        ]
        assert len(before) == len(after)
