"""Unit tests for instruction generation (runtime programs)."""

from repro.cluster.resources import ResourceConfig
from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import compile_program
from repro.compiler.runtime_prog import CPInstruction, MRJobInstruction

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
SMALL = {
    "X": MatrixCharacteristics(200, 20, 4000),
    "y": MatrixCharacteristics(200, 1, 200),
}
ARGS = {"X": "X", "y": "y", "B": "B"}


def plan_of(source, meta=SMALL, cp_mb=2048, mr_mb=1024, block_index=0):
    compiled = compile_program(
        source, ARGS, meta, ResourceConfig(cp_mb, mr_mb)
    )
    blocks = list(compiled.last_level_blocks())
    return blocks[block_index].plan


def check_defined_before_use(plan):
    """Every temp referenced must be produced earlier in the plan."""
    defined = set()
    for ins in plan.instructions:
        if isinstance(ins, MRJobInstruction):
            for name in ins.input_vars + ins.broadcast_vars:
                if name.startswith("_mVar"):
                    assert name in defined, f"{name} used before defined"
            defined.update(ins.output_vars)
            for step in ins.steps:
                defined.add(step.output)
        else:
            for op in ins.inputs:
                if op.name and op.name.startswith("_mVar"):
                    assert op.name in defined, f"{op.name} used before defined"
            if ins.output:
                defined.add(ins.output)
            defined.update(ins.attrs.get("outputs", []))


class TestCPPlans:
    def test_all_cp_for_small_data(self):
        plan = plan_of("X = read($X)\nZ = t(X) %*% X")
        assert plan.num_mr_jobs == 0
        assert all(isinstance(i, CPInstruction) for i in plan.instructions)

    def test_topological_ordering(self):
        plan = plan_of("""
X = read($X)
y = read($y)
A = t(X) %*% X
b = t(X) %*% y
beta = solve(A, b)
""")
        check_defined_before_use(plan)

    def test_transient_writes_bind_names(self):
        plan = plan_of("X = read($X)\nZ = X * 2")
        mvvars = [i for i in plan.instructions if i.opcode == "mvvar"]
        assert {i.output for i in mvvars} == {"X", "Z"}

    def test_self_rebind_skipped(self):
        # X = X (via a no-op rewrite) must not emit mvvar X -> X
        plan = plan_of("X = read($X)\nX = X * 1")
        mvvars = [
            i for i in plan.instructions
            if i.opcode == "mvvar" and i.inputs[0].name == i.output
        ]
        assert not mvvars

    def test_print_has_no_output(self):
        plan = plan_of('X = read($X)\nprint("sum " + sum(X))')
        prints = [i for i in plan.instructions if i.opcode == "print"]
        assert prints and prints[0].output is None

    def test_write_carries_format(self):
        plan = plan_of('X = read($X)\nwrite(X, $B, format="binary")')
        writes = [i for i in plan.instructions if i.opcode == "write"]
        assert writes[0].attrs["fname"] == "B"

    def test_literal_operands_inline(self):
        plan = plan_of("X = read($X)\nZ = X * 3")
        mult = [i for i in plan.instructions if i.opcode == "*"][0]
        assert any(op.is_literal and op.literal == 3 for op in mult.inputs)

    def test_instruction_snapshots_present(self):
        plan = plan_of("X = read($X)\nZ = t(X) %*% X")
        mm = [i for i in plan.instructions if i.opcode in ("ba+*", "tsmm")][0]
        assert mm.out_mc.dims_known
        assert mm.in_mcs


class TestMRPlans:
    def test_mr_jobs_generated_for_big_data(self):
        plan = plan_of(
            "X = read($X)\nZ = t(X) %*% X", meta=BIG, cp_mb=512, mr_mb=2048
        )
        assert plan.num_mr_jobs == 1
        check_defined_before_use(plan)

    def test_job_reads_var_not_temp_for_inputs(self):
        plan = plan_of(
            "X = read($X)\nZ = t(X) %*% X", meta=BIG, cp_mb=512, mr_mb=2048
        )
        job = plan.mr_jobs()[0]
        assert len(job.input_vars) == 1

    def test_broadcast_vars_recorded(self):
        plan = plan_of(
            "X = read($X)\ny = read($y)\nq = X %*% y",
            meta=BIG, cp_mb=512, mr_mb=2048,
        )
        job = plan.mr_jobs()[0]
        assert len(job.broadcast_vars) == 1

    def test_outputs_consumed_by_cp_are_materialized(self):
        plan = plan_of(
            "X = read($X)\ns = sum(X)\nt = s + 1",
            meta=BIG, cp_mb=512, mr_mb=2048,
        )
        job = plan.mr_jobs()[0]
        assert job.steps[0].output in job.output_vars

    def test_steps_have_phases_and_methods(self):
        plan = plan_of(
            "X = read($X)\ny = read($y)\nb = t(X) %*% y",
            meta=BIG, cp_mb=512, mr_mb=2048,
        )
        job = plan.mr_jobs()[0]
        for step in job.steps:
            assert step.phase is not None
            assert step.method

    def test_predicate_plan_flattens_to_cp(self):
        compiled = compile_program(
            "X = read($X)\nwhile (sum(X) > 1000000) { X = X * 0.5 }",
            ARGS, BIG, ResourceConfig(512, 512),
        )
        from repro.compiler import statement_blocks as SB

        loop = [
            b for b in compiled.block_program.blocks
            if isinstance(b, SB.WhileBlock)
        ][0]
        assert all(
            isinstance(ins, CPInstruction)
            for ins in loop.predicate.plan.instructions
        )
        assert loop.predicate.plan.result is not None
