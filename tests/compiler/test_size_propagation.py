"""Unit tests for size/sparsity/constant propagation."""

from repro.common import MatrixCharacteristics
from repro.compiler import hops as H
from repro.compiler.hop_builder import build_hops
from repro.compiler.size_propagation import (
    DEFAULT_LOOP_ITERATIONS,
    Propagator,
    eval_scalar_binary,
    eval_scalar_unary,
    propagate_sizes,
)
from repro.compiler.statement_blocks import build_program
from repro.dml import parse


def propagate(source, input_meta=None, args=None):
    program = build_program(parse(source), args or {})
    build_hops(program)
    env = propagate_sizes(program, input_meta)
    return program, env


def var_mc(env, name):
    return env.get(name).mc


META = {"X": MatrixCharacteristics(1000, 20, 20000),
        "y": MatrixCharacteristics(1000, 1, 1000)}
ARGS = {"X": "X", "y": "y"}


class TestOperatorRules:
    def test_read_gets_input_meta(self):
        _, env = propagate("X = read($X)", META, ARGS)
        assert var_mc(env, "X").rows == 1000
        assert var_mc(env, "X").cols == 20

    def test_matmult_dims(self):
        _, env = propagate("X = read($X)\ny = read($y)\nb = t(X) %*% y",
                           META, ARGS)
        assert (var_mc(env, "b").rows, var_mc(env, "b").cols) == (20, 1)

    def test_transpose_swaps(self):
        _, env = propagate("X = read($X)\nZ = t(X)", META, ARGS)
        assert (var_mc(env, "Z").rows, var_mc(env, "Z").cols) == (20, 1000)

    def test_elementwise_broadcast_column_vector(self):
        _, env = propagate(
            "X = read($X)\ny = read($y)\nZ = X * y", META, ARGS
        )
        assert (var_mc(env, "Z").rows, var_mc(env, "Z").cols) == (1000, 20)

    def test_unknown_broadcast_with_vector_stays_unknown(self):
        src = """
X = read($X)
Y = table(seq(1, nrow(X)), y)
Z = Y - rowSums(Y)
"""
        _, env = propagate(src, META, ARGS)
        assert var_mc(env, "Z").cols is None
        assert var_mc(env, "Z").rows is None

    def test_row_and_col_aggregates(self):
        _, env = propagate(
            "X = read($X)\nr = rowSums(X)\nc = colSums(X)", META, ARGS
        )
        assert (var_mc(env, "r").rows, var_mc(env, "r").cols) == (1000, 1)
        assert (var_mc(env, "c").rows, var_mc(env, "c").cols) == (1, 20)

    def test_datagen_from_constants(self):
        _, env = propagate("Z = matrix(0, rows=8, cols=3)")
        mc = var_mc(env, "Z")
        assert (mc.rows, mc.cols, mc.nnz) == (8, 3, 0)

    def test_datagen_nonzero_constant_dense(self):
        _, env = propagate("Z = matrix(2, rows=8, cols=3)")
        assert var_mc(env, "Z").nnz == 24

    def test_seq_length(self):
        _, env = propagate("s = seq(1, 10, 2)")
        assert var_mc(env, "s").rows == 5

    def test_ctable_output_unknown(self):
        _, env = propagate(
            "X = read($X)\ny = read($y)\nY = table(seq(1, nrow(X)), y)",
            META, ARGS,
        )
        assert not var_mc(env, "Y").dims_known

    def test_cbind_adds_columns(self):
        _, env = propagate(
            "X = read($X)\nones = matrix(1, rows=nrow(X), cols=1)\n"
            "Z = append(X, ones)",
            META, ARGS,
        )
        assert var_mc(env, "Z").cols == 21

    def test_indexing_constant_bounds(self):
        _, env = propagate("X = read($X)\nQ = X[, 2:4]", META, ARGS)
        assert (var_mc(env, "Q").rows, var_mc(env, "Q").cols) == (1000, 3)

    def test_indexing_unknown_bound(self):
        src = """
X = read($X)
Y = table(seq(1, nrow(X)), y)
k = ncol(Y)
Q = X[, 1:k]
"""
        _, env = propagate(src, META, ARGS)
        assert var_mc(env, "Q").cols is None

    def test_diag_vector_to_matrix(self):
        _, env = propagate("y = read($y)\nD = diag(y)", META, ARGS)
        assert (var_mc(env, "D").rows, var_mc(env, "D").cols) == (1000, 1000)

    def test_solve_dims(self):
        src = """
X = read($X)
y = read($y)
A = t(X) %*% X
b = t(X) %*% y
beta = solve(A, b)
"""
        _, env = propagate(src, META, ARGS)
        assert (var_mc(env, "beta").rows, var_mc(env, "beta").cols) == (20, 1)


class TestSparsityRules:
    def test_mult_preserves_zeros(self):
        meta = {"X": MatrixCharacteristics(100, 100, 500)}
        _, env = propagate("X = read($X)\nZ = X * 3", meta, {"X": "X"})
        assert var_mc(env, "Z").nnz == 500

    def test_plus_nonzero_scalar_densifies(self):
        meta = {"X": MatrixCharacteristics(100, 100, 500)}
        _, env = propagate("X = read($X)\nZ = X + 1", meta, {"X": "X"})
        assert var_mc(env, "Z").nnz == 10000

    def test_compare_with_zero_keeps_pattern(self):
        meta = {"X": MatrixCharacteristics(100, 100, 500)}
        _, env = propagate('X = read($X)\nZ = ppred(X, 0, ">")',
                           meta, {"X": "X"})
        assert var_mc(env, "Z").nnz == 500

    def test_exp_densifies(self):
        meta = {"X": MatrixCharacteristics(100, 100, 500)}
        _, env = propagate("X = read($X)\nZ = exp(X)", meta, {"X": "X"})
        assert var_mc(env, "Z").nnz == 10000

    def test_elementwise_mult_takes_min_sparsity(self):
        meta = {
            "X": MatrixCharacteristics(100, 100, 500),
            "y": MatrixCharacteristics(100, 100, 8000),
        }
        _, env = propagate(
            "X = read($X)\ny = read($y)\nZ = X * y", meta, ARGS
        )
        assert var_mc(env, "Z").nnz == 500


class TestScalarConstants:
    def test_arithmetic_chain_folds(self):
        _, env = propagate("a = 2\nb = a * 3 + 4")
        assert env.get("b").const == 10

    def test_nrow_constant_from_meta(self):
        _, env = propagate("X = read($X)\nn = nrow(X)", META, ARGS)
        assert env.get("n").const == 1000

    def test_string_concat_folds(self):
        _, env = propagate('s = "n=" + 5')
        assert env.get("s").const == "n=5"

    def test_division_by_zero_yields_unknown(self):
        _, env = propagate("a = 0\nb = 1 / a")
        assert env.get("b").const is None

    def test_eval_scalar_binary_coverage(self):
        assert eval_scalar_binary(H.OpCode.MIN, 2, 5) == 2
        assert eval_scalar_binary(H.OpCode.POW, 2, 3) == 8
        assert eval_scalar_binary(H.OpCode.AND, True, False) is False
        assert eval_scalar_binary(H.OpCode.LE, 2, 2) is True

    def test_eval_scalar_unary_coverage(self):
        assert eval_scalar_unary(H.OpCode.NEG, 3) == -3
        assert eval_scalar_unary(H.OpCode.SQRT, 16) == 4
        assert eval_scalar_unary(H.OpCode.SIGN, -2) == -1
        assert eval_scalar_unary(H.OpCode.LOG, -1) is None


class TestControlFlow:
    def test_if_merge_equal_dims_kept(self):
        src = """
X = read($X)
if (flag > 0) { Z = X * 2 } else { Z = X + 1 }
W = Z
"""
        meta = dict(META)
        _, env = propagate("flag = 1 - 1\n" + src, meta, ARGS)
        # predicate is constant but sizes agree either way
        assert var_mc(env, "W").rows == 1000

    def test_if_merge_conflicting_dims_unknown(self):
        src = """
X = read($X)
flag = nrow(X)
if (flag > 10) { Z = X } else { Z = t(X) }
"""
        _, env = propagate(src, META, ARGS)
        assert var_mc(env, "Z").rows is None

    def test_if_merge_conflicting_consts_dropped(self):
        src = """
a = 1
if (b > 0) { a = 2 }
"""
        meta = {}
        program = build_program(parse(src), {})
        build_hops(program)
        env = Propagator(program).run()
        assert env.get("a").const is None

    def test_loop_variant_scalar_reset(self):
        _, env = propagate("i = 0\nwhile (i < 5) { i = i + 1 }")
        assert env.get("i").const is None

    def test_loop_invariant_size_kept(self):
        src = """
X = read($X)
w = matrix(0, rows=ncol(X), cols=1)
i = 0
while (i < 5) {
  w = w + t(X) %*% (X %*% w)
  i = i + 1
}
"""
        _, env = propagate(src, META, ARGS)
        assert (var_mc(env, "w").rows, var_mc(env, "w").cols) == (20, 1)

    def test_loop_growing_matrix_reset(self):
        src = """
X = read($X)
i = 0
while (i < 3) {
  X = append(X, matrix(0, rows=nrow(X), cols=1))
  i = i + 1
}
"""
        _, env = propagate(src, META, ARGS)
        assert var_mc(env, "X").cols is None

    def test_for_trip_count_constant(self):
        program, _ = propagate("s = 0\nfor (i in 1:7) { s = s + i }")
        loop = program.blocks[1]
        assert loop.known_iterations == 7

    def test_for_trip_count_seq(self):
        program, _ = propagate("s = 0\nfor (i in seq(2, 10, 2)) { s = s + i }")
        loop = program.blocks[1]
        assert loop.known_iterations == 5

    def test_default_loop_iterations_positive(self):
        assert DEFAULT_LOOP_ITERATIONS >= 2


class TestFunctionPropagation:
    def test_sizes_flow_through_function(self):
        src = """
double_it = function(Matrix[double] A) return (Matrix[double] B) {
  B = A * 2
}
X = read($X)
Y = double_it(X)
"""
        _, env = propagate(src, META, ARGS)
        assert (var_mc(env, "Y").rows, var_mc(env, "Y").cols) == (1000, 20)

    def test_scalar_const_flows_through_function(self):
        src = """
add1 = function(double a) return (double b) { b = a + 1 }
x = add1(4)
"""
        _, env = propagate(src)
        assert env.get("x").const == 5

    def test_recursive_function_outputs_unknown(self):
        src = """
rec = function(Matrix[double] A) return (Matrix[double] B) {
  B = rec(A)
}
X = read($X)
Y = rec(X)
"""
        _, env = propagate(src, META, ARGS)
        assert not var_mc(env, "Y").dims_known
