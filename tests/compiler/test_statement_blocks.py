"""Unit tests for statement-block construction and variable analysis."""

from repro.compiler import statement_blocks as SB
from repro.compiler.statement_blocks import build_program
from repro.dml import parse


def build(source, args=None):
    return build_program(parse(source), args or {})


class TestBlockStructure:
    def test_straight_line_single_block(self):
        program = build("a = 1\nb = a + 1\nc = b * 2")
        assert len(program.blocks) == 1
        assert isinstance(program.blocks[0], SB.GenericBlock)

    def test_if_splits_blocks(self):
        program = build("a = 1\nif (a > 0) { b = 1 }\nc = 2")
        kinds = [type(b).__name__ for b in program.blocks]
        assert kinds == ["GenericBlock", "IfBlock", "GenericBlock"]

    def test_while_contains_body_blocks(self):
        program = build("i = 0\nwhile (i < 3) { i = i + 1 }")
        loop = program.blocks[1]
        assert isinstance(loop, SB.WhileBlock)
        assert len(loop.body) == 1

    def test_nested_loops_counted(self):
        program = build("""
i = 0
while (i < 3) {
  j = 0
  while (j < 2) { j = j + 1 }
  i = i + 1
}
""")
        total = program.num_blocks()
        # outer generic, while, body generic, inner while, inner body
        # generic, trailing body generic
        assert total == 6

    def test_last_level_blocks_are_generic(self):
        program = build("a = 1\nif (a > 0) { b = 1 } else { b = 2 }")
        last = [
            blk
            for top in program.blocks
            for blk in top.last_level_blocks()
        ]
        assert all(isinstance(b, SB.GenericBlock) for b in last)
        assert len(last) == 3

    def test_functions_have_own_blocks(self):
        program = build("""
f = function(double a) return (double b) {
  if (a > 0) { b = 1 } else { b = 2 }
}
x = f(3)
""")
        assert "f" in program.functions
        assert len(program.functions["f"].blocks) == 1

    def test_block_ids_unique(self):
        program = build("a = 1\nif (a > 0) { b = 1 }\nwhile (a < 5) { a = a + 1 }")
        ids = [b.block_id for b in program.all_blocks()]
        assert len(ids) == len(set(ids))


class TestVariableAnalysis:
    def test_reads_and_updates(self):
        program = build("b = a + 1\nc = b * 2")
        block = program.blocks[0]
        assert block.read_vars == {"a"}
        assert block.updated_vars == {"b", "c"}

    def test_local_definition_not_a_read(self):
        program = build("a = 1\nb = a + 1")
        assert program.blocks[0].read_vars == set()

    def test_left_indexing_reads_target(self):
        program = build("X[1, 1] = v")
        block = program.blocks[0]
        assert "X" in block.read_vars
        assert "X" in block.updated_vars

    def test_if_block_reads_predicate_and_bodies(self):
        program = build("if (flag > 0) { y = x } else { y = z }")
        block = program.blocks[0]
        assert {"flag", "x", "z"} <= block.read_vars
        assert "y" in block.updated_vars

    def test_loop_carried_variable_is_read(self):
        program = build("while (i < 3) { i = i + 1 }")
        loop = program.blocks[0]
        assert "i" in loop.read_vars
        assert "i" in loop.updated_vars

    def test_for_variable_not_an_update(self):
        program = build("for (i in 1:3) { s = s + i }")
        loop = program.blocks[0]
        assert "i" not in loop.updated_vars
        assert "s" in loop.read_vars

    def test_conditional_assignment_read_after(self):
        # b assigned only in one branch: later read must also count as a
        # read of the outer value
        program = build("""
b = 0
if (a > 0) { b = 1 }
c = b
""")
        if_block = program.blocks[1]
        assert "b" in if_block.updated_vars
