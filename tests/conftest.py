"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster, small_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.runtime import Interpreter, SimulatedHDFS


@pytest.fixture
def cluster():
    """The paper's 1+6 node cluster."""
    return paper_cluster()


@pytest.fixture
def tiny_cluster():
    """A laptop-scale cluster for fast unit tests."""
    return small_cluster()


@pytest.fixture
def hdfs():
    """A simulated HDFS with a small sample cap for fast execution."""
    return SimulatedHDFS(sample_cap=64)


@pytest.fixture
def default_resource():
    return ResourceConfig(cp_heap_mb=2048, mr_heap_mb=1024)


def make_meta(rows, cols, sparsity=1.0):
    return MatrixCharacteristics(rows, cols, int(rows * cols * sparsity))


@pytest.fixture
def run_dml(cluster):
    """Compile and execute a DML snippet on small generated inputs.

    Returns a callable run(source, inputs=..., args=..., resource=...)
    -> (ExecutionResult, frame-access helper via prints).
    """

    def _run(source, inputs=None, args=None, resource=None, seed=3,
             adapter=None, sample_cap=64):
        local_hdfs = SimulatedHDFS(sample_cap=sample_cap)
        script_args = dict(args or {})
        for name, spec in (inputs or {}).items():
            path = f"data/{name}"
            if isinstance(spec, np.ndarray):
                from repro.runtime.matrix import MatrixObject

                obj = MatrixObject.from_sample(spec)
                local_hdfs.put(path, obj.mc, obj.data)
            else:
                rows, cols = spec[:2]
                sparsity = spec[2] if len(spec) > 2 else 1.0
                local_hdfs.create_dense_input(
                    path, rows, cols, sparsity=sparsity, seed=seed
                )
            script_args[name] = path
        resource = resource or ResourceConfig(cp_heap_mb=2048, mr_heap_mb=1024)
        compiled = compile_program(
            source, script_args, local_hdfs.input_meta(), resource
        )
        interp = Interpreter(
            cluster, hdfs=local_hdfs, sample_cap=sample_cap, adapter=adapter
        )
        result = interp.run(compiled, resource)
        return result, compiled, local_hdfs

    return _run
