"""Unit tests for cost-model calibration (repro.cost.calibrate).

Covers the robust slope fit, the collector (validation, bounds,
merging, the thread-local slot), profile persistence round-trips, the
sample-floor fallback contract, and the deterministic drift generator
the benchmarks use as simulated hardware truth.
"""

import math
import threading

import pytest

from repro.cluster import paper_cluster
from repro.cost.calibrate import (
    COMPONENTS,
    DEFAULT_MIN_SAMPLES,
    NULL_COLLECTOR,
    CalibrationCollector,
    CalibrationProfile,
    cluster_signature,
    drifted_parameters,
    fit_profile,
    fit_slope,
    get_collector,
    resolve_profile,
    set_collector,
    use_collector,
)
from repro.cost.constants import DEFAULT_PARAMETERS, CostParameters
from repro.obs import Tracer, use_tracer


def _fill(collector, component, slope, n=DEFAULT_MIN_SAMPLES, start=1):
    """n exact samples of ``seconds = slope * work``."""
    for i in range(start, start + n):
        work = float(i) * 1000.0
        collector.add(component, work, slope * work)


class TestFitSlope:
    def test_recovers_exact_slope(self):
        pairs = [(x, 0.25 * x) for x in (1.0, 2.0, 5.0, 9.0)]
        assert fit_slope(pairs) == pytest.approx(0.25)

    def test_huber_downweights_outliers(self):
        # one wild outlier among 20 clean samples must not move the
        # slope by more than a few percent (plain OLS would)
        pairs = [(float(x), 2.0 * x) for x in range(1, 21)]
        pairs.append((10.0, 2000.0))
        slope = fit_slope(pairs)
        assert slope == pytest.approx(2.0, rel=0.05)

    def test_empty_and_zero_work_degenerate(self):
        assert fit_slope([]) is None
        assert fit_slope([(0.0, 1.0), (0.0, 2.0)]) is None

    def test_negative_slope_rejected(self):
        assert fit_slope([(1.0, -1.0), (2.0, -2.0)]) is None


class TestCollector:
    def test_add_and_aggregates(self):
        collector = CalibrationCollector()
        collector.add("hdfs_read", 100.0, 2.0)
        collector.add("hdfs_read", 300.0, 6.0)
        collector.add("cp_compute", 50.0, 1.0)
        assert collector.counts() == {"hdfs_read": 2, "cp_compute": 1}
        assert collector.totals()["hdfs_read"] == (2, 400.0, 8.0)
        assert collector.total_samples == 3
        collector.clear()
        assert collector.total_samples == 0

    def test_rejects_useless_samples(self):
        collector = CalibrationCollector()
        collector.add("hdfs_read", 0.0, 1.0)      # zero work: no slope info
        collector.add("hdfs_read", -5.0, 1.0)     # negative work
        collector.add("hdfs_read", 5.0, -1.0)     # negative seconds
        collector.add("hdfs_read", float("nan"), 1.0)
        collector.add("hdfs_read", 5.0, float("inf"))
        assert collector.total_samples == 0

    def test_pair_retention_is_bounded_but_counts_continue(self):
        collector = CalibrationCollector(max_samples=4)
        _fill(collector, "shuffle", 0.5, n=10)
        n, pairs = collector.snapshot()["shuffle"]
        assert n == 10
        assert len(pairs) == 4

    def test_merge_folds_samples(self):
        a, b = CalibrationCollector(), CalibrationCollector()
        _fill(a, "hdfs_read", 0.1, n=3)
        _fill(b, "hdfs_read", 0.1, n=2, start=10)
        _fill(b, "local_disk", 0.2, n=4)
        a.merge(b)
        assert a.counts() == {"hdfs_read": 5, "local_disk": 4}

    def test_emission_increments_tracer_counter(self):
        tracer = Tracer()
        collector = CalibrationCollector()
        with use_tracer(tracer):
            collector.add("cp_compute", 10.0, 0.1)
            collector.add("cp_compute", 0.0, 0.1)  # rejected: not counted
        assert tracer.counter("calib.samples") == 1


class TestCollectorSlot:
    def test_default_is_null(self):
        assert get_collector() is NULL_COLLECTOR
        assert get_collector().enabled is False

    def test_use_collector_is_thread_local(self):
        mine = CalibrationCollector()
        seen = {}

        def peek():
            seen["other"] = get_collector()

        with use_collector(mine):
            assert get_collector() is mine
            worker = threading.Thread(target=peek)
            worker.start()
            worker.join()
        assert seen["other"] is NULL_COLLECTOR
        assert get_collector() is NULL_COLLECTOR

    def test_set_collector_process_wide(self):
        mine = CalibrationCollector()
        try:
            set_collector(mine)
            assert get_collector() is mine
        finally:
            set_collector(None)
        assert get_collector() is NULL_COLLECTOR

    def test_null_collector_is_inert(self):
        NULL_COLLECTOR.add("hdfs_read", 100.0, 1.0)
        assert NULL_COLLECTOR.total_samples == 0
        assert NULL_COLLECTOR.snapshot() == {}


class TestFitProfile:
    def test_fits_rates_and_latencies(self):
        collector = CalibrationCollector()
        # rate component: t = work / bw with bw = 2e8
        _fill(collector, "hdfs_read", 1.0 / 2e8)
        # latency component: t = units * latency with latency = 12.5
        for i in range(DEFAULT_MIN_SAMPLES):
            collector.add("mr_job_latency", float(1 + i % 3),
                          12.5 * (1 + i % 3))
        profile = fit_profile(collector, paper_cluster())
        assert profile.fitted["hdfs_read_bw"] == pytest.approx(2e8)
        assert profile.fitted["mr_job_latency"] == pytest.approx(12.5)

    def test_sample_floor_keeps_base(self):
        collector = CalibrationCollector()
        _fill(collector, "hdfs_read", 1.0 / 2e8, n=DEFAULT_MIN_SAMPLES - 1)
        profile = fit_profile(collector, paper_cluster())
        assert "hdfs_read_bw" not in profile.fitted
        assert (profile.parameters().hdfs_read_bw
                == DEFAULT_PARAMETERS.hdfs_read_bw)
        # lowering the floor fits the same samples
        profile = fit_profile(collector, paper_cluster(),
                              min_samples=DEFAULT_MIN_SAMPLES - 1)
        assert profile.fitted["hdfs_read_bw"] == pytest.approx(2e8)

    def test_base_params_are_the_fallback(self):
        base = drifted_parameters(3)
        profile = fit_profile(CalibrationCollector(), paper_cluster(),
                              base_params=base)
        assert profile.fitted == {}
        assert profile.parameters() == base

    def test_counters(self):
        tracer = Tracer()
        collector = CalibrationCollector()
        _fill(collector, "hdfs_read", 1.0 / 2e8)
        _fill(collector, "cp_compute", 1.0 / 1e9)
        with use_tracer(tracer):
            fit_profile(collector, paper_cluster())
        assert tracer.counter("calib.fitted") == 2
        assert tracer.counter("calib.fit_runs") == 1


class TestProfilePersistence:
    def _profile(self):
        collector = CalibrationCollector()
        _fill(collector, "hdfs_read", 1.0 / drifted_parameters(9).hdfs_read_bw)
        # enough samples but a degenerate (all-zero-seconds) stream:
        # the fit must keep the base value for this component
        _fill(collector, "mr_job_latency", 0.0)
        return fit_profile(collector, paper_cluster())

    def test_roundtrip_is_bit_exact(self, tmp_path):
        profile = self._profile()
        path = tmp_path / "profile.json"
        profile.save(str(path))
        loaded = CalibrationProfile.load(str(path))
        assert loaded == profile
        assert loaded.parameters() == profile.parameters()
        assert isinstance(loaded.parameters(), CostParameters)

    def test_json_roundtrip(self):
        profile = self._profile()
        clone = CalibrationProfile.from_json(profile.to_json())
        assert clone == profile

    def test_matches_cluster(self):
        cluster = paper_cluster()
        profile = fit_profile(CalibrationCollector(), cluster)
        assert profile.matches(cluster)
        assert profile.cluster_signature == cluster_signature(cluster)

    def test_resolve_profile_contract(self, tmp_path):
        cluster = paper_cluster()
        profile = fit_profile(CalibrationCollector(), cluster)
        assert resolve_profile(None) is None
        assert resolve_profile(profile, cluster) is profile
        path = tmp_path / "p.json"
        profile.save(str(path))
        assert resolve_profile(str(path), cluster) == profile
        with pytest.raises(TypeError):
            resolve_profile(42)
        mismatched = CalibrationProfile(
            cluster_signature="0" * 16, base=profile.base
        )
        with pytest.raises(ValueError):
            resolve_profile(mismatched, cluster)


class TestDriftedParameters:
    def test_deterministic_and_distinct(self):
        assert drifted_parameters(42) == drifted_parameters(42)
        assert drifted_parameters(42) != drifted_parameters(43)
        assert drifted_parameters(42) != DEFAULT_PARAMETERS

    def test_only_calibratable_fields_move(self):
        drifted = drifted_parameters(42)
        calibratable = {component.param for component in COMPONENTS}
        from dataclasses import asdict

        base = asdict(DEFAULT_PARAMETERS)
        for name, value in asdict(drifted).items():
            if name in calibratable:
                assert value != base[name]
                assert value > 0.0
            else:
                assert value == base[name]

    def test_spread_bounds(self):
        drifted = drifted_parameters(7, spread=0.6)
        for component in COMPONENTS:
            ratio = (getattr(drifted, component.param)
                     / getattr(DEFAULT_PARAMETERS, component.param))
            assert math.exp(-0.6) <= ratio <= math.exp(0.6)
