"""Unit tests for the white-box cost model."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import compile_plans, compile_program
from repro.cost import CostModel
from repro.cost.compute_model import operation_flops
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost import io_model

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
ARGS = {"X": "X", "y": "y", "B": "B"}


@pytest.fixture
def cost_model():
    return CostModel(paper_cluster())


def estimate(cost_model, source, rc, meta=BIG):
    compiled = compile_program(source, ARGS, meta, rc)
    return cost_model.estimate_program(compiled, rc), compiled


class TestComputeModel:
    def test_matmult_flops_scale_with_nnz(self):
        dense = MatrixCharacteristics(1000, 1000, 10**6)
        sparse = MatrixCharacteristics(1000, 1000, 10**4)
        v = MatrixCharacteristics(1000, 1, 1000)
        out = MatrixCharacteristics(1000, 1, 1000)
        assert operation_flops("ba+*", out, [dense, v]) > operation_flops(
            "ba+*", out, [sparse, v]
        )

    def test_solve_cubic(self):
        small = MatrixCharacteristics(10, 10, 100)
        large = MatrixCharacteristics(100, 100, 10000)
        b = MatrixCharacteristics(100, 1, 100)
        out = MatrixCharacteristics(100, 1, 100)
        ratio = operation_flops("solve", out, [large, b]) / operation_flops(
            "solve", out, [small, b]
        )
        assert ratio > 500  # ~cubic

    def test_exp_more_expensive_than_abs(self):
        mc = MatrixCharacteristics(1000, 1000, 10**6)
        assert operation_flops("exp", mc, [mc]) > operation_flops(
            "abs", mc, [mc]
        )

    def test_scalar_ops_constant(self):
        mc = MatrixCharacteristics(0, 0, 0)
        assert operation_flops("nrow", mc, []) == 1.0


class TestIOModel:
    def test_read_time_proportional_to_size(self):
        params = DEFAULT_PARAMETERS
        small = MatrixCharacteristics(1000, 10, 10**4)
        large = MatrixCharacteristics(10**6, 10, 10**7)
        assert io_model.hdfs_read_time(large, params) > 100 * (
            io_model.hdfs_read_time(small, params)
        )

    def test_parallel_read_faster(self):
        params = DEFAULT_PARAMETERS
        mc = MatrixCharacteristics(10**6, 100, 10**8)
        serial = io_model.hdfs_read_time(mc, params, parallelism=1)
        parallel = io_model.hdfs_read_time(mc, params, parallelism=10)
        assert parallel == pytest.approx(serial / 10)

    def test_sparse_io_penalty(self):
        params = DEFAULT_PARAMETERS
        dense = MatrixCharacteristics(10**5, 100, 10**7)
        sparse = MatrixCharacteristics(10**5, 100, 10**5)
        # sparse data is smaller despite the per-byte penalty
        assert io_model.hdfs_read_time(sparse, params) < (
            io_model.hdfs_read_time(dense, params)
        )

    def test_shuffle_scales_with_nodes(self):
        params = DEFAULT_PARAMETERS
        t1 = io_model.shuffle_time(10**9, params, 1)
        t6 = io_model.shuffle_time(10**9, params, 6)
        assert t6 == pytest.approx(t1 / 6)


class TestProgramCosting:
    def test_invocation_counter(self, cost_model):
        rc = ResourceConfig(2048, 1024)
        compiled = compile_program("a = 1", {}, {}, rc)
        before = cost_model.invocations
        cost_model.estimate_program(compiled, rc)
        assert cost_model.invocations == before + 1

    def test_mr_plan_includes_job_latency(self, cost_model):
        rc = ResourceConfig(512, 2048)
        cost, _ = estimate(cost_model, "X = read($X)\nZ = t(X) %*% X", rc)
        assert cost >= DEFAULT_PARAMETERS.mr_job_latency

    def test_cp_plan_dominated_by_read_and_compute(self, cost_model):
        rc = ResourceConfig(40960, 1024)
        cost, _ = estimate(
            cost_model, "X = read($X)\ns = sum(X)\nprint(s)", rc
        )
        read_time = io_model.hdfs_read_time(BIG["X"], DEFAULT_PARAMETERS)
        assert cost == pytest.approx(read_time + 0.5, rel=0.5)

    def test_loop_cold_warm_asymmetry(self, cost_model):
        """An iterative CP plan reads X once: doubling iterations must
        NOT double the cost (the read amortizes)."""
        template = """
X = read($X)
v = matrix(1, rows=ncol(X), cols=1)
i = 0
for (i in 1:%d) {
  v = t(X) %%*%% (X %%*%% v)
}
"""
        rc = ResourceConfig(20480, 1024)
        cost2, _ = estimate(cost_model, template % 2, rc)
        cost4, _ = estimate(cost_model, template % 4, rc)
        assert cost4 < 2 * cost2

    def test_branch_costs_weighted(self, cost_model):
        src = """
X = read($X)
m = sum(X)
if (m > 0) { Z = t(X) %*% X } else { z = 1 }
"""
        rc = ResourceConfig(512, 2048)
        cost, compiled = estimate(cost_model, src, rc)
        full_src = "X = read($X)\nZ = t(X) %*% X"
        full_cost, _ = estimate(cost_model, full_src, rc)
        assert cost < full_cost + 10  # roughly half the tsmm job counted

    def test_provisional_blocks_excluded(self, cost_model):
        src = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
Z = Y * 2
"""
        rc = ResourceConfig(512, 512)
        cost, compiled = estimate(cost_model, src, rc)
        assert cost == pytest.approx(0.0)

    def test_memory_sensitivity_crossover(self, cost_model):
        """The Figure 1 CG pattern: iterative scripts get cheaper once X
        fits the CP budget; DS-style single-pass compute does not."""
        cg = """
X = read($X)
p = matrix(1, rows=ncol(X), cols=1)
i = 0
while (i < 5) {
  p = t(X) %*% (X %*% p) * 0.001
  i = i + 1
}
"""
        small = ResourceConfig(1024, 2048)
        large = ResourceConfig(20480, 2048)
        cost_small, compiled = estimate(cost_model, cg, small)
        compile_plans(compiled, large)
        cost_large = cost_model.estimate_program(compiled, large)
        assert cost_large < cost_small / 2

    def test_export_charged_for_dirty_inputs(self, cost_model):
        src = """
X = read($X)
y = read($y)
v = y * 2
q = X %*% v
"""
        rc = ResourceConfig(512, 2048)
        cost, compiled = estimate(cost_model, src, rc)
        assert cost > DEFAULT_PARAMETERS.mr_job_latency
