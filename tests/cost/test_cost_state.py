"""Unit tests for cost-state tracking (variable residency/merging)."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import FileFormat, MatrixCharacteristics
from repro.cost.model import CostModel, CostState, VarCostState


def state_of(rows=1000, cols=100, in_memory=False, dirty=False):
    return VarCostState(
        MatrixCharacteristics(rows, cols, rows * cols), in_memory, dirty
    )


class TestVarCostState:
    def test_copy_is_deep_for_mc(self):
        a = state_of()
        b = a.copy()
        b.mc.rows = 5
        assert a.mc.rows == 1000

    def test_default_format(self):
        assert state_of().fmt is FileFormat.BINARY_BLOCK


class TestCostStateMerge:
    def test_in_memory_requires_both_branches(self):
        left = CostState({"X": state_of(in_memory=True)})
        right = CostState({"X": state_of(in_memory=False)})
        merged = left.merge_with(right)
        assert not merged["X"].in_memory

    def test_dirty_if_either_branch(self):
        left = CostState({"X": state_of(dirty=False)})
        right = CostState({"X": state_of(dirty=True)})
        merged = left.merge_with(right)
        assert merged["X"].dirty

    def test_one_sided_variables_kept(self):
        left = CostState({"X": state_of()})
        right = CostState({"Y": state_of()})
        merged = left.merge_with(right)
        assert set(merged) == {"X", "Y"}

    def test_copy_independent(self):
        original = CostState({"X": state_of(in_memory=True)})
        clone = original.copy()
        clone["X"].in_memory = False
        assert original["X"].in_memory


class TestWorkingSetApproximation:
    def make_model(self):
        return CostModel(paper_cluster())

    def test_oversized_output_not_retained(self):
        from repro.compiler.runtime_prog import CPInstruction, Operand

        model = self.make_model()
        rc = ResourceConfig(512, 512)  # 358 MB budget
        state = CostState()
        big = MatrixCharacteristics(10**6, 100, 10**8)  # 800 MB output
        ins = CPInstruction(
            opcode="abs", inputs=[Operand(name="X")], output="_t1",
            out_mc=big, in_mcs=[big], out_is_matrix=True,
        )
        state["X"] = VarCostState(big, in_memory=False, dirty=False)
        model._cost_cp(ins, rc, state)
        assert not state["_t1"].in_memory

    def test_working_set_pressure_drops_oldest(self):
        from repro.compiler.runtime_prog import CPInstruction, Operand

        model = self.make_model()
        rc = ResourceConfig(1024, 512)  # ~717 MB budget
        state = CostState()
        mc = MatrixCharacteristics(10**6, 50, 5 * 10**7)  # 400 MB each
        for idx in range(3):
            ins = CPInstruction(
                opcode="abs", inputs=[Operand(name=f"in{idx}")],
                output=f"out{idx}", out_mc=mc, in_mcs=[mc],
                out_is_matrix=True,
            )
            state[f"in{idx}"] = VarCostState(mc, in_memory=True, dirty=False)
            model._cost_cp(ins, rc, state)
        resident = sum(
            1 for v in state.values() if v.in_memory
        )
        # 6 x 400 MB cannot be resident in a 717 MB budget
        assert resident <= 2

    def test_rereading_charged_after_drop(self):
        """A matrix exceeding the budget is re-read on each access."""
        from repro.compiler.runtime_prog import CPInstruction, Operand

        model = self.make_model()
        rc = ResourceConfig(512, 512)
        state = CostState()
        big = MatrixCharacteristics(10**6, 100, 10**8)
        state["X"] = VarCostState(big, in_memory=False, dirty=False)
        ins = CPInstruction(
            opcode="uamax", inputs=[Operand(name="X")], output="m",
            out_mc=MatrixCharacteristics(0, 0, 0), in_mcs=[big],
        )
        first = model._cost_cp(ins, rc, state)
        second = model._cost_cp(ins, rc, state)
        assert first == pytest.approx(second)
        assert first > 1.0  # dominated by the 800 MB read
