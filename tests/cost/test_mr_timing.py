"""Unit tests for the shared MR job timing model."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import FileFormat, MatrixCharacteristics
from repro.compiler.lops import JobType, Phase
from repro.compiler.runtime_prog import MRJobInstruction, MRStep, Operand
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost.mr_timing import time_mr_job


def make_job(rows=10**6, cols=1000, method="mapmm", phase=Phase.MAP,
             with_output=True, block_id=0):
    in_mc = MatrixCharacteristics(rows, cols, rows * cols)
    out_mc = MatrixCharacteristics(rows, 1, rows)
    step = MRStep(
        opcode="ba+*", method=method, phase=phase,
        inputs=[Operand(name="X"), Operand(name="v")],
        output="_out", out_mc=out_mc, in_mcs=[in_mc],
        broadcast_names=["v"],
    )
    return MRJobInstruction(
        job_type=JobType.GMR, steps=[step], input_vars=["X"],
        broadcast_vars=["v"], output_vars=["_out"] if with_output else [],
        block_id=block_id,
    ), in_mc


def timing_for(job, mcs, resource=None, cluster=None):
    cluster = cluster or paper_cluster()
    resource = resource or ResourceConfig(512, 2048)

    def mc_of(name):
        return mcs.get(name)

    def fmt_of(name):
        return FileFormat.BINARY_BLOCK

    return time_mr_job(job, mc_of, fmt_of, resource, cluster,
                       DEFAULT_PARAMETERS)


VEC = MatrixCharacteristics(10**6, 1, 10**6)


class TestTaskLayout:
    def test_tasks_from_input_size(self):
        job, in_mc = make_job()
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        # 8 GB / 128 MB blocks = 60 map tasks
        assert timing.n_tasks == 8 * 10**9 // (128 * 2**20) + 1

    def test_small_input_single_task(self):
        job, _ = make_job(rows=1000, cols=10)
        small = MatrixCharacteristics(1000, 10, 10**4)
        timing = timing_for(job, {"X": small, "v": VEC})
        assert timing.n_tasks == 1
        assert timing.waves == 1

    def test_large_tasks_reduce_parallelism(self):
        job, in_mc = make_job()
        mcs = {"X": in_mc, "v": VEC}
        small_tasks = timing_for(job, mcs, ResourceConfig(512, 1024))
        big_tasks = timing_for(job, mcs, ResourceConfig(512, 30000))
        assert big_tasks.dop < small_tasks.dop
        assert big_tasks.map_read > small_tasks.map_read

    def test_cp_reservation_reduces_parallelism(self):
        job, in_mc = make_job()
        mcs = {"X": in_mc, "v": VEC}
        free = timing_for(job, mcs, ResourceConfig(512, 8192))
        reserved = timing_for(job, mcs, ResourceConfig(50000, 8192))
        assert reserved.dop <= free.dop


class TestPhases:
    def test_job_latency_always_charged(self):
        job, in_mc = make_job()
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        assert timing.latency >= DEFAULT_PARAMETERS.mr_job_latency

    def test_extra_job_latency(self):
        job, in_mc = make_job()
        job.extra_job_latency = 1
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        assert timing.latency >= 2 * DEFAULT_PARAMETERS.mr_job_latency

    def test_shuffle_step_moves_data(self):
        job, in_mc = make_job(method="reorg_t", phase=Phase.SHUFFLE)
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        assert timing.shuffle > 0

    def test_map_only_no_shuffle(self):
        job, in_mc = make_job(method="mapmm", phase=Phase.MAP)
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        assert timing.shuffle == 0
        assert timing.reduce_compute == 0

    def test_aggregation_adds_partials(self):
        job, in_mc = make_job(method="mapmm_agg", phase=Phase.REDUCE)
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        assert timing.shuffle > 0
        assert timing.reduce_compute > 0

    def test_broadcast_read_scales_with_waves(self):
        job, in_mc = make_job()
        big_vec = MatrixCharacteristics(10**6, 100, 10**8)
        timing_small = timing_for(job, {"X": in_mc, "v": VEC})
        timing_big = timing_for(job, {"X": in_mc, "v": big_vec})
        assert timing_big.broadcast_read > timing_small.broadcast_read

    def test_thrash_penalty_for_tiny_tasks(self):
        job, in_mc = make_job()
        mcs = {"X": in_mc, "v": VEC}
        tiny = timing_for(job, mcs, ResourceConfig(512, 512))
        normal = timing_for(job, mcs, ResourceConfig(512, 2048))
        # thrash penalty slows map compute relative to the parallelism
        # advantage of smaller tasks
        per_task_tiny = tiny.map_compute * tiny.dop
        per_task_normal = normal.map_compute * normal.dop
        assert per_task_tiny > per_task_normal

    def test_total_is_sum_of_parts(self):
        job, in_mc = make_job()
        timing = timing_for(job, {"X": in_mc, "v": VEC})
        parts = (
            timing.latency + timing.map_read + timing.broadcast_read
            + timing.map_compute + timing.map_write + timing.shuffle
            + timing.reduce_compute + timing.reduce_write
        )
        assert timing.total == pytest.approx(parts)

    def test_unknown_input_charges_latency_only_io(self):
        job, _ = make_job()
        unknown = MatrixCharacteristics(None, None, None)
        timing = timing_for(job, {"X": unknown, "v": unknown})
        assert timing.map_read == 0
        assert timing.latency > 0
