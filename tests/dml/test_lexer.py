"""Unit tests for the DML tokenizer."""

import pytest

from repro.dml.lexer import Token, tokenize
from repro.errors import DMLSyntaxError


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "EOF"]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind not in ("EOF", "NEWLINE")]


class TestBasicTokens:
    def test_identifier(self):
        assert texts("abc") == ["abc"]
        assert kinds("abc") == ["ID"]

    def test_identifier_with_dots_and_underscores(self):
        assert texts("as.scalar my_var") == ["as.scalar", "my_var"]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "INT"
        assert tokens[0].text == "42"

    def test_double_literal(self):
        assert tokenize("3.14")[0].kind == "DOUBLE"

    def test_double_without_leading_digit(self):
        assert tokenize(".5")[0].kind == "DOUBLE"

    def test_scientific_notation(self):
        for text in ("1e9", "1.5e-3", "2E+4"):
            token = tokenize(text)[0]
            assert token.kind == "DOUBLE"
            assert token.text == text

    def test_malformed_exponent_raises(self):
        with pytest.raises(DMLSyntaxError):
            tokenize("1e")

    def test_keywords_recognized(self):
        for kw in ("if", "else", "while", "for", "in", "function",
                   "return", "TRUE", "FALSE"):
            assert tokenize(kw)[0].kind == "KEYWORD"

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind == "ID"


class TestOperators:
    def test_matmult_operator(self):
        assert texts("A %*% B") == ["A", "%*%", "B"]

    def test_modulo_operators(self):
        assert texts("a %% b %/% c") == ["a", "%%", "b", "%/%", "c"]

    def test_relational_operators(self):
        assert texts("a <= b >= c == d != e") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e",
        ]

    def test_maximal_munch_prefers_long_ops(self):
        # '<=' must not tokenize as '<' '='
        tokens = texts("a<=b")
        assert "<=" in tokens

    def test_boolean_operators(self):
        assert texts("a & b | !c") == ["a", "&", "b", "|", "!", "c"]

    def test_double_boolean_operators(self):
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_arrow_assignment(self):
        assert "<-" in texts("x <- 5")


class TestStringsAndComments:
    def test_double_quoted_string(self):
        token = tokenize('"hello world"')[0]
        assert token.kind == "STRING"
        assert token.text == "hello world"

    def test_single_quoted_string(self):
        assert tokenize("'abc'")[0].text == "abc"

    def test_escape_sequences(self):
        assert tokenize(r'"a\nb"')[0].text == "a\nb"
        assert tokenize(r'"a\"b"')[0].text == 'a"b'

    def test_unterminated_string_raises(self):
        with pytest.raises(DMLSyntaxError):
            tokenize('"unterminated')

    def test_string_across_newline_raises(self):
        with pytest.raises(DMLSyntaxError):
            tokenize('"multi\nline"')

    def test_comment_skipped(self):
        assert texts("a = 1 # a comment\nb = 2") == [
            "a", "=", "1", "b", "=", "2",
        ]

    def test_comment_only_line(self):
        assert texts("# nothing here") == []


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a = 1\nb = 2")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2

    def test_column_numbers(self):
        tokens = tokenize("ab = cd")
        cd_token = [t for t in tokens if t.text == "cd"][0]
        assert cd_token.column == 6

    def test_error_carries_position(self):
        with pytest.raises(DMLSyntaxError) as exc:
            tokenize("a = @")
        assert exc.value.line == 1
        assert exc.value.column == 5


class TestStructure:
    def test_newline_tokens_emitted(self):
        assert kinds("a\nb") == ["ID", "NEWLINE", "ID"]

    def test_always_ends_with_eof(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("x")[-1].kind == "EOF"

    def test_cmdline_arg_tokens(self):
        assert texts("$X") == ["$", "X"]

    def test_unknown_character_raises(self):
        with pytest.raises(DMLSyntaxError):
            tokenize("a ~ b")

    def test_token_repr(self):
        assert "ID" in repr(Token("ID", "x", 1, 1))
