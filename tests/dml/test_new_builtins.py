"""Tests for the cumsum and removeEmpty builtins."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.errors import CompilerError
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.kernels import execute_kernel
from repro.runtime.matrix import MatrixObject


def run_src(src, data, cp_mb=2048):
    hdfs = SimulatedHDFS(sample_cap=32)
    obj = MatrixObject.from_sample(np.asarray(data, dtype=float))
    hdfs.put("X", obj.mc, obj.data)
    rc = ResourceConfig(cp_mb, 512)
    compiled = compile_program(src, {"X": "X"}, hdfs.input_meta(), rc)
    interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
    return interp.run(compiled, rc), compiled, hdfs


class TestCumsum:
    def test_column_wise_prefix_sums(self):
        _, data, mc = execute_kernel(
            "ucumk+", [MatrixObject.from_sample(np.ones((4, 2)))]
        )
        assert data[:, 0].tolist() == [1, 2, 3, 4]
        assert (mc.rows, mc.cols) == (4, 2)

    def test_in_script(self):
        result, _, _ = run_src(
            "X = read($X)\nc = cumsum(X)\nprint(as.scalar(c[3, 1]))",
            [[1.0], [2.0], [3.0]],
        )
        assert result.prints == ["6.0"]

    def test_size_propagation_keeps_dims(self):
        src = "X = read($X)\nc = cumsum(X)\nprint(nrow(c) + ncol(c))"
        result, compiled, _ = run_src(src, np.ones((5, 3)))
        assert result.prints == ["8"]
        assert not any(
            b.requires_recompile for b in compiled.last_level_blocks()
        )


class TestRemoveEmpty:
    def test_rows_margin(self):
        data = [[0, 0], [1, 2], [0, 0], [3, 0]]
        result, _, _ = run_src(
            'X = read($X)\nZ = removeEmpty(target=X, margin="rows")\n'
            "print(nrow(Z))",
            data,
        )
        assert result.prints == ["2"]

    def test_cols_margin(self):
        data = [[0, 1, 0], [0, 2, 0]]
        result, _, _ = run_src(
            'X = read($X)\nZ = removeEmpty(target=X, margin="cols")\n'
            "print(ncol(Z))",
            data,
        )
        assert result.prints == ["1"]

    def test_all_empty_keeps_one(self):
        result, _, _ = run_src(
            'X = read($X)\nZ = removeEmpty(target=X, margin="rows")\n'
            "print(nrow(Z))",
            np.zeros((4, 2)),
        )
        assert int(result.prints[0]) >= 1

    def test_output_size_unknown_at_compile_time(self):
        src = 'X = read($X)\nZ = removeEmpty(target=X, margin="rows")'
        compiled = compile_program(
            src, {"X": "X"}, {"X": MatrixCharacteristics(100, 10, 500)},
            ResourceConfig(512, 512),
        )
        assert any(
            b.requires_recompile for b in compiled.last_level_blocks()
        )

    def test_invalid_margin_rejected(self):
        with pytest.raises(CompilerError):
            compile_program(
                'X = read($X)\nZ = removeEmpty(target=X, margin="diag")',
                {"X": "X"}, {"X": MatrixCharacteristics(4, 4, 16)},
            )

    def test_missing_target_rejected(self):
        with pytest.raises(CompilerError):
            compile_program(
                'Z = removeEmpty(margin="rows")', {}, {},
            )

    def test_logical_scaling(self):
        """The compacted logical dimension scales by the sample's
        non-empty fraction."""
        rng = np.random.default_rng(0)
        sample = rng.random((32, 4))
        sample[::2] = 0.0  # half the rows empty
        hdfs = SimulatedHDFS(sample_cap=32)
        obj = MatrixObject.from_sample(sample, logical_rows=10**6)
        hdfs.put("X", obj.mc, obj.data)
        rc = ResourceConfig(2048, 512)
        compiled = compile_program(
            'X = read($X)\nZ = removeEmpty(target=X, margin="rows")\n'
            "print(nrow(Z))",
            {"X": "X"}, hdfs.input_meta(), rc,
        )
        result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32).run(
            compiled, rc
        )
        assert int(result.prints[0]) == 500000
