"""Unit tests for the DML parser."""

import pytest

from repro.dml import ast, parse
from repro.errors import DMLSyntaxError


def parse_expr(text):
    program = parse(f"x = {text}")
    return program.statements[0].expr


class TestExpressions:
    def test_literal_types(self):
        assert parse_expr("42").vtype == "int"
        assert parse_expr("4.2").vtype == "double"
        assert parse_expr('"s"').vtype == "string"
        assert parse_expr("TRUE").value is True

    def test_negative_literal_folded(self):
        expr = parse_expr("-3")
        assert isinstance(expr, ast.Literal)
        assert expr.value == -3

    def test_addition_left_associative(self):
        expr = parse_expr("a + b + c")
        assert expr.op == "+"
        assert expr.left.op == "+"

    def test_multiplication_binds_tighter_than_addition(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_matmult_binds_tighter_than_elementwise(self):
        expr = parse_expr("a * X %*% v")
        assert expr.op == "*"
        assert expr.right.op == "%*%"

    def test_power_binds_tightest(self):
        expr = parse_expr("a * b ^ 2")
        assert expr.op == "*"
        assert expr.right.op == "^"

    def test_power_right_associative(self):
        expr = parse_expr("a ^ b ^ c")
        assert expr.op == "^"
        assert expr.right.op == "^"

    def test_unary_minus_on_expression(self):
        expr = parse_expr("-(a + b)")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "-"

    def test_relational_lower_than_arithmetic(self):
        expr = parse_expr("a + b < c * d")
        assert expr.op == "<"

    def test_boolean_precedence(self):
        expr = parse_expr("a < b & c > d | e == f")
        assert expr.op == "|"
        assert expr.left.op == "&"

    def test_not_operator(self):
        expr = parse_expr("!converged")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "!"

    def test_parenthesized_grouping(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_command_line_arg(self):
        expr = parse_expr("$X")
        assert isinstance(expr, ast.CommandLineArg)
        assert expr.name == "X"


class TestFunctionCalls:
    def test_positional_args(self):
        expr = parse_expr("solve(A, b)")
        assert expr.name == "solve"
        assert len(expr.args) == 2

    def test_named_args(self):
        expr = parse_expr("matrix(0, rows=10, cols=2)")
        assert len(expr.args) == 1
        assert set(expr.named_args) == {"rows", "cols"}

    def test_positional_after_named_raises(self):
        with pytest.raises(DMLSyntaxError):
            parse("x = matrix(rows=10, 0)")

    def test_nested_calls(self):
        expr = parse_expr("sum(exp(X))")
        assert expr.name == "sum"
        assert expr.args[0].name == "exp"

    def test_no_arg_call(self):
        expr = parse_expr("rand()")
        assert expr.args == []


class TestIndexing:
    def test_full_column_range(self):
        expr = parse_expr("X[, 1:3]")
        assert isinstance(expr, ast.IndexingExpr)
        assert expr.row_range.is_all
        assert expr.col_range.is_range

    def test_single_cell(self):
        expr = parse_expr("X[i, j]")
        assert not expr.row_range.is_range
        assert not expr.col_range.is_range

    def test_row_range_only(self):
        expr = parse_expr("X[1:5, ]")
        assert expr.row_range.is_range
        assert expr.col_range.is_all

    def test_open_ended_range(self):
        expr = parse_expr("X[2:, ]")
        assert expr.row_range.lower is not None
        assert expr.row_range.upper is None

    def test_indexing_binds_postfix(self):
        expr = parse_expr("t(X)[1, ]")
        assert isinstance(expr, ast.IndexingExpr)
        assert expr.target.name == "t"


class TestStatements:
    def test_assignment(self):
        program = parse("x = 5")
        stmt = program.statements[0]
        assert isinstance(stmt, ast.Assignment)
        assert stmt.target == "x"

    def test_arrow_assignment(self):
        stmt = parse("x <- 5").statements[0]
        assert stmt.target == "x"

    def test_semicolon_separated(self):
        program = parse("a = 1; b = 2")
        assert len(program.statements) == 2

    def test_left_indexing_assignment(self):
        stmt = parse("X[1:2, ] = Y").statements[0]
        assert stmt.is_left_indexing

    def test_multi_assignment(self):
        prog = parse("""
f = function(Matrix[double] A) return (Matrix[double] B, double c) {
  B = A
  c = 1
}
[P, q] = f(X)
""")
        stmt = prog.statements[0]
        assert isinstance(stmt, ast.MultiAssignment)
        assert stmt.targets == ["P", "q"]

    def test_print_statement(self):
        stmt = parse('print("hi")').statements[0]
        assert isinstance(stmt, ast.ExprStatement)

    def test_if_else(self):
        stmt = parse("if (a > 0) { b = 1 } else { b = 2 }").statements[0]
        assert isinstance(stmt, ast.IfStatement)
        assert len(stmt.body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_braces(self):
        stmt = parse("if (a > 0) b = 1").statements[0]
        assert isinstance(stmt, ast.IfStatement)
        assert len(stmt.body) == 1

    def test_else_if_chain(self):
        stmt = parse(
            "if (a == 1) { b = 1 } else { if (a == 2) { b = 2 } }"
        ).statements[0]
        assert isinstance(stmt.else_body[0], ast.IfStatement)

    def test_else_on_next_line(self):
        source = "if (a > 0) {\n  b = 1\n}\nelse {\n  b = 2\n}"
        stmt = parse(source).statements[0]
        assert len(stmt.else_body) == 1

    def test_while_loop(self):
        stmt = parse("while (i < 10) { i = i + 1 }").statements[0]
        assert isinstance(stmt, ast.WhileStatement)

    def test_for_loop(self):
        stmt = parse("for (i in 1:10) { s = s + i }").statements[0]
        assert isinstance(stmt, ast.ForStatement)
        assert stmt.var == "i"

    def test_for_loop_with_seq(self):
        stmt = parse("for (i in seq(1, 9, 2)) { s = s + i }").statements[0]
        assert stmt.increment is not None

    def test_parfor_parsed_as_for(self):
        stmt = parse("parfor (i in 1:3) { s = i }").statements[0]
        assert isinstance(stmt, ast.ForStatement)

    def test_multiline_expression_in_parens(self):
        program = parse("x = (a +\n  b)")
        assert program.statements[0].expr.op == "+"

    def test_trailing_operator_continues_line(self):
        program = parse("x = a +\n b")
        assert program.statements[0].expr.op == "+"


class TestFunctions:
    def test_function_definition(self):
        prog = parse("""
f = function(Matrix[double] X, double s = 0.5) return (Matrix[double] Y) {
  Y = X * s
}
""")
        func = prog.functions["f"]
        assert [p.name for p in func.inputs] == ["X", "s"]
        assert func.inputs[1].default is not None
        assert func.outputs[0].data_type == "matrix"

    def test_scalar_param_types(self):
        prog = parse("""
g = function(int n, boolean flag, string s) return (double out) {
  out = n
}
""")
        types = [(p.data_type, p.value_type) for p in prog.functions["g"].inputs]
        assert types == [
            ("scalar", "int"), ("scalar", "boolean"), ("scalar", "string"),
        ]

    def test_duplicate_function_raises(self):
        source = """
f = function(double x) return (double y) { y = x }
f = function(double x) return (double y) { y = x }
"""
        with pytest.raises(DMLSyntaxError):
            parse(source)

    def test_unknown_param_type_raises(self):
        with pytest.raises(DMLSyntaxError):
            parse("f = function(frame F) return (double y) { y = 1 }")


class TestErrors:
    def test_unterminated_block(self):
        with pytest.raises(DMLSyntaxError):
            parse("while (a) { b = 1")

    def test_missing_assignment_operator(self):
        with pytest.raises(DMLSyntaxError):
            parse("x 5")

    def test_unexpected_token_in_expression(self):
        with pytest.raises(DMLSyntaxError):
            parse("x = *")

    def test_keyword_as_statement(self):
        with pytest.raises(DMLSyntaxError):
            parse("else { x = 1 }")
