"""Round-trip tests for the DML pretty-printer."""

import dataclasses

import pytest

from repro.dml import ast, parse
from repro.dml.printer import print_expr, print_program
from repro.scripts import SCRIPTS, load_script


def ast_equal(a, b):
    """Structural AST equality ignoring source positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            ast_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(ast_equal(a[k], b[k]) for k in a)
    if dataclasses.is_dataclass(a):
        for f in dataclasses.fields(a):
            if f.name == "line":
                continue
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    return a == b


def round_trip(source):
    first = parse(source)
    printed = print_program(first)
    second = parse(printed)
    assert ast_equal(first, second), printed
    return printed


class TestExpressions:
    def test_precedence_preserved(self):
        cases = [
            "x = a + b * c",
            "x = (a + b) * c",
            "x = a - b - c",
            "x = a / (b / c)",
            "x = a ^ b ^ c",
            "x = (a ^ b) ^ c",
            "x = -(a + b)",
            "x = !p & q | r",
            "x = a %*% b + c",
            "x = (a < b) == (c > d)",
        ]
        for case in cases:
            round_trip(case)

    def test_literals(self):
        round_trip('x = 1\ny = 2.5\nz = "hi \\"there\\""\nw = TRUE')

    def test_calls_and_indexing(self):
        round_trip("x = solve(t(A) %*% A, t(A) %*% b)")
        round_trip("x = matrix(0, rows=n, cols=k)[1:3, ]")
        round_trip("x = X[, i]")
        round_trip("x = X[2:, 1:k]")

    def test_cmdline_args(self):
        round_trip("x = read($X)\ny = ifdef($tol, 0.001)")


class TestStatements:
    def test_control_flow(self):
        round_trip("""
if (a > 0) {
  b = 1
} else {
  if (a < 0) { b = 2 } else { b = 3 }
}
while (b < 10) { b = b + 1 }
for (i in 1:5) { s = s + i }
parfor (i in seq(1, 9, 2)) { s = s + i }
""")

    def test_left_indexing_and_multi_assign(self):
        round_trip("""
f = function(double a) return (double b, double c) {
  b = a
  c = a * 2
}
X = matrix(0, rows=3, cols=3)
X[1:2, ] = matrix(1, rows=2, cols=3)
[p, q] = f(4)
""")

    def test_functions_with_defaults(self):
        round_trip("""
g = function(Matrix[double] X, double reg = 0.01, int k = 5)
    return (Matrix[double] Y) {
  Y = X * reg + k
}
Z = g(matrix(1, rows=2, cols=2))
""")


class TestBundledScripts:
    @pytest.mark.parametrize("name", sorted(SCRIPTS))
    def test_all_scripts_round_trip(self, name):
        round_trip(load_script(name))


class TestPrintExpr:
    def test_matmult_parenthesization(self):
        expr = parse("x = a * (b + c)").statements[0].expr
        assert print_expr(expr) == "a * (b + c)"

    def test_no_spurious_parens_at_top(self):
        expr = parse("x = a + b").statements[0].expr
        assert print_expr(expr) == "a + b"
