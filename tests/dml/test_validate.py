"""Unit tests for semantic validation."""

import pytest

from repro.common import DataType
from repro.dml import parse, validate
from repro.errors import ValidationError


def check(source, args=None):
    return validate(parse(source), args)


class TestVariableDefinition:
    def test_use_before_definition_raises(self):
        with pytest.raises(ValidationError):
            check("y = x + 1")

    def test_definition_then_use(self):
        result = check("x = 1\ny = x + 1")
        assert result.variable_types["y"] is DataType.SCALAR

    def test_conditional_definition_accepted(self):
        # DML permissively accepts vars assigned in only one branch
        result = check("a = 1\nif (a > 0) { b = 2 }\nc = b")
        assert "c" in result.variable_types

    def test_loop_body_can_read_loop_carried_var(self):
        check("x = 0\nwhile (x < 3) { x = x + 1 }")

    def test_for_variable_visible_in_body(self):
        check("s = 0\nfor (i in 1:3) { s = s + i }")

    def test_undefined_in_function_body_raises(self):
        source = """
f = function(double a) return (double b) { b = a + missing }
"""
        with pytest.raises(ValidationError):
            check(source)

    def test_function_params_are_defined(self):
        check("""
f = function(Matrix[double] X) return (double s) { s = sum(X) }
""")

    def test_missing_function_output_raises(self):
        with pytest.raises(ValidationError):
            check("f = function(double a) return (double b) { c = a }")


class TestTypes:
    def test_matmult_requires_matrices(self):
        with pytest.raises(ValidationError):
            check("a = 1\nb = 2\nc = a %*% b")

    def test_matrix_scalar_arithmetic_is_matrix(self):
        result = check("X = rand(rows=3, cols=3)\nY = X * 2")
        assert result.variable_types["Y"] is DataType.MATRIX

    def test_aggregate_is_scalar(self):
        result = check("X = rand(rows=3, cols=3)\ns = sum(X)")
        assert result.variable_types["s"] is DataType.SCALAR

    def test_matrix_predicate_raises(self):
        with pytest.raises(ValidationError):
            check("X = rand(rows=3, cols=3)\nif (X) { y = 1 }")

    def test_indexing_non_matrix_raises(self):
        with pytest.raises(ValidationError):
            check("a = 1\nb = a[1, 1]")

    def test_left_indexing_undefined_target_raises(self):
        with pytest.raises(ValidationError):
            check("X[1, 1] = 5")

    def test_left_indexing_scalar_target_raises(self):
        with pytest.raises(ValidationError):
            check("a = 1\na[1, 1] = 5")

    def test_matrix_index_bound_raises(self):
        with pytest.raises(ValidationError):
            check("X = rand(rows=3, cols=3)\nY = X[X, 1]")


class TestCalls:
    def test_unknown_function_raises(self):
        with pytest.raises(ValidationError):
            check("y = nosuchfn(1)")

    def test_builtin_arity_too_few(self):
        with pytest.raises(ValidationError):
            check("y = solve(1)")

    def test_builtin_arity_too_many(self):
        with pytest.raises(ValidationError):
            check("X = rand(rows=2, cols=2)\ny = t(X, X)")

    def test_unknown_named_arg_raises(self):
        with pytest.raises(ValidationError):
            check("X = matrix(0, rows=2, cols=2, depth=3)")

    def test_udf_wrong_arity_raises(self):
        source = """
f = function(double a, double b) return (double c) { c = a + b }
y = f(1)
"""
        with pytest.raises(ValidationError):
            check(source)

    def test_udf_unknown_named_arg_raises(self):
        source = """
f = function(double a) return (double c) { c = a }
y = f(b=1)
"""
        with pytest.raises(ValidationError):
            check(source)

    def test_multi_assignment_count_mismatch_raises(self):
        source = """
f = function(double a) return (double b, double c) { b = a; c = a }
[x] = f(1)
"""
        with pytest.raises(ValidationError):
            check(source)

    def test_multi_output_in_expression_raises(self):
        source = """
f = function(double a) return (double b, double c) { b = a; c = a }
x = f(1) + 1
"""
        with pytest.raises(ValidationError):
            check(source)

    def test_ifdef_requires_dollar_arg(self):
        with pytest.raises(ValidationError):
            check("a = 1\nb = ifdef(a, 2)")

    def test_cmdline_args_collected(self):
        result = check("X = read($X)\nout = ifdef($tol, 0.1)")
        assert result.cmdline_args == {"X", "tol"}
