"""Unit tests for the autoscaling Brain: granted resources, the spill
penalty, the control law, and byte-identity of rescaled runs."""

import pytest

from repro.api import ElasticMLSession, SessionConfig
from repro.cluster import ClusterLoad, ResourceConfig, small_cluster
from repro.cluster.resources import GrantedResource
from repro.cost import CostModel
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost.mr_timing import spill_penalty_time
from repro.elastic import BrainPolicy, ElasticBrain
from repro.runtime import Interpreter
from repro.scripts import load_script
from repro.workloads import prepare_inputs, scenario

#: small CP heap forces an MR job; large MR heap sits above the grant
#: floor so shrinking it actually charges spill
SPILLY = ResourceConfig(128, 512)


@pytest.fixture
def session():
    sess = ElasticMLSession(cluster=small_cluster(), sample_cap=64)
    return sess


@pytest.fixture
def linreg_args(session):
    return prepare_inputs(
        session.hdfs, "LinregDS", scenario("XS", cols=100)
    )


class TestGrantedResource:
    def test_scales_every_heap(self):
        ideal = ResourceConfig(1000, 800, {3: 600})
        granted = GrantedResource.of(ideal, 0.5)
        assert granted.cp_heap_mb == 500
        assert granted.mr_heap_mb == 400
        assert granted.mr_heap_per_block == {3: 300}
        assert granted.ideal is ideal
        assert granted.fraction == 0.5

    def test_fraction_clamped(self):
        ideal = ResourceConfig(1000)
        assert GrantedResource.of(ideal, 1.7).fraction == 1.0
        assert GrantedResource.of(ideal, -0.3).fraction == 0.0

    def test_cluster_floor(self):
        cluster = small_cluster()
        floor = cluster.heap_mb_for_container(cluster.min_allocation_mb)
        granted = GrantedResource.of(
            ResourceConfig(512, 512), 0.25, cluster
        )
        # 512 * 0.25 = 128 sits below the min-allocation heap floor
        assert granted.cp_heap_mb == floor
        assert granted.mr_heap_mb == floor

    def test_describe_mentions_grant(self):
        granted = GrantedResource.of(ResourceConfig(1024), 0.5)
        assert "grant 50%" in granted.describe()


class TestSpillPenalty:
    def test_zero_at_or_above_ideal(self):
        p = DEFAULT_PARAMETERS
        assert spill_penalty_time(1e9, 512, 512, p) == 0.0
        assert spill_penalty_time(1e9, 512, 1024, p) == 0.0
        assert spill_penalty_time(1e9, 0, 0, p) == 0.0

    def test_proportional_to_missing_fraction(self):
        p = DEFAULT_PARAMETERS
        half = spill_penalty_time(1e9, 512, 256, p)
        quarter = spill_penalty_time(1e9, 512, 384, p)
        assert half > quarter > 0
        assert half == pytest.approx(2 * quarter)

    def test_scales_with_input_bytes(self):
        p = DEFAULT_PARAMETERS
        assert spill_penalty_time(2e9, 512, 256, p) == pytest.approx(
            2 * spill_penalty_time(1e9, 512, 256, p)
        )


class TestControlLaw:
    def test_shrink_when_hot(self):
        brain = ElasticBrain(BrainPolicy())
        assert brain.next_fraction(1.0, 0.9) == 0.75
        assert brain.next_fraction(0.75, 0.75) == pytest.approx(0.5625)

    def test_grow_when_cool(self):
        brain = ElasticBrain(BrainPolicy())
        assert brain.next_fraction(0.75, 0.1) == 1.0
        assert brain.next_fraction(0.5625, 0.45) == pytest.approx(0.75)

    def test_hold_in_band(self):
        brain = ElasticBrain(BrainPolicy())
        assert brain.next_fraction(0.75, 0.6) == 0.75

    def test_floor_and_cap(self):
        policy = BrainPolicy(min_grant_fraction=0.25)
        brain = ElasticBrain(policy)
        frac = 1.0
        for _ in range(20):
            frac = brain.next_fraction(frac, 1.0)
        assert frac >= policy.min_grant_fraction
        for _ in range(20):
            frac = brain.next_fraction(frac, 0.0)
        assert frac == 1.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BrainPolicy(shrink_step=1.0)
        with pytest.raises(ValueError):
            BrainPolicy(min_grant_fraction=0.0)
        with pytest.raises(ValueError):
            BrainPolicy(cool_utilization=0.9, hot_utilization=0.5)


class TestCostModelSpill:
    def test_spill_component_charged_for_grant(self, session, linreg_args):
        cluster = session.cluster
        src = load_script("LinregDS")
        compiled = session.compile_script(src, linreg_args, resource=SPILLY)
        model = CostModel(cluster)
        ideal_cost = model.estimate_program(compiled, SPILLY)
        granted = GrantedResource.of(SPILLY, 0.25, cluster)
        components = model.estimate_components(compiled, granted)
        assert components["total"] > ideal_cost
        assert components.get("spill", 0.0) > 0.0

    def test_full_grant_costs_like_ideal(self, session, linreg_args):
        src = load_script("LinregDS")
        compiled = session.compile_script(src, linreg_args, resource=SPILLY)
        model = CostModel(session.cluster)
        granted = GrantedResource.of(SPILLY, 1.0)
        assert model.estimate_program(compiled, granted) == (
            model.estimate_program(compiled, SPILLY)
        )


class TestByteIdentity:
    def test_rescaled_run_same_outputs_more_time(self, session, linreg_args):
        cluster = session.cluster
        src = load_script("LinregDS")
        c_plain = session.compile_script(src, linreg_args, resource=SPILLY)
        plain = Interpreter(cluster, hdfs=session.hdfs, sample_cap=64).run(
            c_plain, SPILLY
        )
        assert plain.mr_jobs > 0

        c_brain = session.compile_script(src, linreg_args, resource=SPILLY)
        brain = ElasticBrain(
            BrainPolicy(), cluster, utilization=lambda _t: 1.0
        )
        shrunk = Interpreter(
            cluster, hdfs=session.hdfs, sample_cap=64, brain=brain
        ).run(c_brain, SPILLY)

        assert shrunk.prints == plain.prints
        assert shrunk.mr_jobs == plain.mr_jobs
        assert brain.fraction < 1.0
        assert shrunk.total_time > plain.total_time
        assert shrunk.breakdown.get("spill", 0.0) > 0.0

    def test_brain_decisions_recorded(self, session, linreg_args):
        src = load_script("LinregDS")
        compiled = session.compile_script(src, linreg_args, resource=SPILLY)
        brain = ElasticBrain(
            BrainPolicy(), session.cluster, utilization=lambda _t: 1.0
        )
        Interpreter(
            session.cluster, hdfs=session.hdfs, sample_cap=64, brain=brain
        ).run(compiled, SPILLY)
        assert brain.polls > 0
        assert len(brain.decisions) == brain.polls
        fractions = [f for _, _, f in brain.decisions]
        # hot signal all the way down: fractions never increase
        assert fractions == sorted(fractions, reverse=True)


class TestSessionFidelity:
    def test_elastic_off_by_default(self):
        assert SessionConfig().elastic is False

    def test_idle_elastic_session_is_identical(self):
        cluster = small_cluster()
        plain = ElasticMLSession(cluster=cluster, sample_cap=64)
        args = prepare_inputs(
            plain.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        ref = plain.run("LinregDS", args, adapt=False)

        elastic = ElasticMLSession(
            cluster=cluster, sample_cap=64,
            config=SessionConfig(elastic=True),
        )
        prepare_inputs(elastic.hdfs, "LinregDS", scenario("XS", cols=100))
        got = elastic.run("LinregDS", args, adapt=False)

        assert got.prints == ref.prints
        assert got.total_time == ref.total_time
        assert elastic.last_brain is not None
        assert elastic.last_brain.fraction == 1.0

    def test_loaded_elastic_session_same_outputs(self):
        cluster = small_cluster()
        plain = ElasticMLSession(cluster=cluster, sample_cap=64)
        args = prepare_inputs(
            plain.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        ref = plain.run("LinregDS", args, resource=SPILLY, adapt=False)

        hot = ElasticMLSession(
            cluster=cluster, sample_cap=64,
            config=SessionConfig(elastic=True),
            load=ClusterLoad.constant(0.9),
        )
        prepare_inputs(hot.hdfs, "LinregDS", scenario("XS", cols=100))
        got = hot.run("LinregDS", args, resource=SPILLY, adapt=False)

        assert got.prints == ref.prints
        assert hot.last_brain.fraction < 1.0
        assert got.total_time > ref.total_time
