"""Cross-cutting invariant: chaos + calibration + background load + the
Brain composed in one run still produce byte-identical outputs to a
plain serial run — every subsystem perturbs time, never numerics."""

import numpy as np
import pytest

from repro.api import ElasticMLSession, SessionConfig
from repro.chaos import FaultPlan
from repro.cluster import ClusterLoad, ResourceConfig, small_cluster
from repro.serving import (
    ElasticMLServer,
    Submission,
    default_serving_workers,
)
from repro.workloads import prepare_inputs, scenario

#: forces an MR job (small CP heap) with a shrinkable MR heap, so the
#: composed run exercises the spill path too
STATIC = ResourceConfig(128, 512)


def make_session(**kwargs):
    return ElasticMLSession(
        cluster=small_cluster(), sample_cap=64, **kwargs
    )


def linreg_args(session):
    return prepare_inputs(
        session.hdfs, "LinregDS", scenario("XS", cols=100)
    )


class TestComposedInvariants:
    @pytest.fixture(scope="class")
    def runs(self):
        plain_session = make_session()
        args = linreg_args(plain_session)
        plain = plain_session.run(
            "LinregDS", args, resource=STATIC, adapt=False
        )

        chaos_session = make_session()
        linreg_args(chaos_session)
        chaos_only = chaos_session.run(
            "LinregDS", args, resource=STATIC, adapt=False,
            chaos=FaultPlan.from_rate(7, 0.1),
        )

        composed_session = make_session(
            config=SessionConfig(elastic=True, calibrate=True),
            load=ClusterLoad.constant(0.8),
        )
        linreg_args(composed_session)
        composed = composed_session.run(
            "LinregDS", args, resource=STATIC, adapt=False,
            chaos=FaultPlan.from_rate(7, 0.1),
        )
        return {
            "args": args,
            "plain": (plain_session, plain),
            "chaos_only": (chaos_session, chaos_only),
            "composed": (composed_session, composed),
        }

    def test_prints_byte_identical(self, runs):
        _, plain = runs["plain"]
        _, composed = runs["composed"]
        assert composed.prints == plain.prints

    def test_output_matrix_identical(self, runs):
        args = runs["args"]
        plain_session, _ = runs["plain"]
        composed_session, _ = runs["composed"]
        ref = np.array(plain_session.hdfs.get(args["B"]).data)
        got = np.array(composed_session.hdfs.get(args["B"]).data)
        assert np.array_equal(got, ref)

    def test_chaos_injection_unchanged_by_elasticity(self, runs):
        """The Brain and the load signal do not change which faults
        fire: the same plan injects the same faults."""
        _, chaos_only = runs["chaos_only"]
        _, composed = runs["composed"]
        assert composed.chaos is not None
        assert composed.chaos.injected == chaos_only.chaos.injected

    def test_calibration_collected_samples(self, runs):
        composed_session, _ = runs["composed"]
        assert composed_session.calibration is not None
        assert composed_session.calibration.total_samples > 0

    def test_composed_run_never_faster_than_chaos_only(self, runs):
        """Load + Brain + calibration only ever add simulated seconds
        on top of the chaos run (which shares the same fault schedule,
        including the allocation-denial resource fallback)."""
        _, chaos_only = runs["chaos_only"]
        _, composed = runs["composed"]
        assert composed.total_time >= chaos_only.total_time
        assert composed.prints == chaos_only.prints

    def test_brain_actually_engaged(self, runs):
        composed_session, _ = runs["composed"]
        brain = composed_session.last_brain
        assert brain is not None
        assert brain.polls > 0
        assert brain.fraction < 1.0  # constant 0.8 load is hot


class TestElasticServing:
    def test_server_outputs_match_serial(self):
        cluster = small_cluster(num_nodes=2, node_memory_mb=2048)
        server = ElasticMLServer(
            cluster=cluster, sample_cap=64, trace=True,
            config=SessionConfig(elastic=True, tenant_quota_share=0.6),
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        for index in range(4):
            server.submit(Submission(
                tenant=f"t{index}", script="LinregDS", args=args,
                adapt=False,
            ))
        results = server.drain()
        server.shutdown()
        assert all(r.ok for r in results)

        session = ElasticMLSession(cluster=cluster, sample_cap=64)
        prepare_inputs(session.hdfs, "LinregDS", scenario("XS", cols=100))
        ref = session.run("LinregDS", args, adapt=False)
        for result in results:
            assert result.outcome.result.prints == ref.prints

        stats = server.stats()
        assert stats["elastic.polls"] > 0
        assert "elastic.rescales" in stats

    def test_quota_impossible_rejected_up_front(self):
        cluster = small_cluster(num_nodes=1, node_memory_mb=1024)
        server = ElasticMLServer(
            cluster=cluster, sample_cap=64,
            config=SessionConfig(tenant_quota_share=0.05),
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        server.submit(Submission(tenant="t0", script="LinregDS",
                                 args=args, adapt=False))
        result = server.drain()[0]
        server.shutdown()
        assert result.status == "rejected"

    def test_default_workers_bounded(self):
        workers = default_serving_workers()
        assert 2 <= workers <= 8
