"""Property-based tests (hypothesis) on the Brain's control law, the
admission ladder, trace generation, and RM capacity/quota safety."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceConfig, ResourceManager, small_cluster
from repro.elastic import BrainPolicy, ElasticBrain, bursty_trace

utilizations = st.floats(min_value=0.0, max_value=1.0)
fractions = st.floats(min_value=0.25, max_value=1.0)

IDEAL = ResourceConfig(512, 512)


def ladder_brain(min_fraction=0.25):
    cluster = small_cluster(num_nodes=1, node_memory_mb=1024)
    policy = BrainPolicy(min_grant_fraction=min_fraction)
    return ElasticBrain(policy, cluster), cluster


class TestControlLaw:
    @given(fraction=fractions, lo=utilizations, hi=utilizations)
    @settings(max_examples=50, deadline=None)
    def test_monotone_nonincreasing_in_utilization(self, fraction, lo, hi):
        """More load never yields a larger grant."""
        if lo > hi:
            lo, hi = hi, lo
        brain = ElasticBrain(BrainPolicy())
        assert brain.next_fraction(fraction, lo) >= (
            brain.next_fraction(fraction, hi)
        )

    @given(fraction=fractions, u=utilizations)
    @settings(max_examples=50, deadline=None)
    def test_result_stays_in_bounds(self, fraction, u):
        brain = ElasticBrain(BrainPolicy())
        out = brain.next_fraction(fraction, u)
        assert brain.policy.min_grant_fraction <= out <= 1.0

    @given(u=utilizations)
    @settings(max_examples=50, deadline=None)
    def test_fixed_point_under_repeated_signal(self, u):
        """A constant signal drives the fraction to a fixed point (the
        floor, 1.0, or a hold) within the ladder's depth."""
        brain = ElasticBrain(BrainPolicy())
        frac = 1.0
        for _ in range(32):
            frac = brain.next_fraction(frac, u)
        assert brain.next_fraction(frac, u) == frac


class TestAdmissionLadder:
    @given(occupied=st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_fraction_in_bounds_or_none(self, occupied):
        brain, cluster = ladder_brain()
        rm = ResourceManager(cluster)
        for _ in range(occupied):
            if rm.try_allocate(cluster.min_allocation_mb) is None:
                break
        fraction = brain.admission_fraction(IDEAL, rm)
        if fraction is not None:
            assert (
                brain.policy.min_grant_fraction <= fraction <= 1.0
            )

    @given(fewer=st.integers(0, 3), extra=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_free_capacity(self, fewer, extra):
        """More free memory never yields a smaller admitted fraction."""
        def admitted(occupied):
            brain, cluster = ladder_brain()
            rm = ResourceManager(cluster)
            for _ in range(occupied):
                if rm.try_allocate(cluster.min_allocation_mb) is None:
                    break
            return brain.admission_fraction(IDEAL, rm)

        roomy = admitted(fewer)
        cramped = admitted(fewer + extra)
        if cramped is not None:
            assert roomy is not None
            assert roomy >= cramped

    def test_strict_queueing_disables_ladder(self):
        brain, cluster = ladder_brain()
        brain.policy = BrainPolicy(elastic_admission=False)
        rm = ResourceManager(cluster)
        # fill the node so the ideal container cannot fit
        while rm.try_allocate(cluster.min_allocation_mb) is not None:
            pass
        assert brain.admission_fraction(IDEAL, rm) is None


class TestTraceGeneration:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_bursty_trace_deterministic(self, seed):
        a = bursty_trace(seed=seed, tenants=8, bursts=2)
        b = bursty_trace(seed=seed, tenants=8, bursts=2)
        assert a.name == b.name
        assert a.entries == b.entries

    @given(seed=st.integers(0, 2**16),
           tenants=st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_trace_shape(self, seed, tenants):
        trace = bursty_trace(seed=seed, tenants=tenants, bursts=2)
        assert len(trace.entries) == tenants
        arrivals = [e.arrival_s for e in trace.entries]
        assert arrivals == sorted(arrivals)
        assert all(a >= 0 for a in arrivals)


class TestResourceManagerSafety:
    @given(requests=st.lists(
        st.integers(min_value=64, max_value=2048), max_size=24
    ))
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, requests):
        cluster = small_cluster(num_nodes=2, node_memory_mb=1024)
        rm = ResourceManager(cluster)
        for mb in requests:
            try:
                rm.try_allocate(mb)
            except Exception:
                continue
            assert rm.used_mb <= cluster.total_memory_mb

    @given(requests=st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),
            st.integers(min_value=64, max_value=1024),
        ),
        max_size=24,
    ))
    @settings(max_examples=30, deadline=None)
    def test_quota_never_exceeded(self, requests):
        cluster = small_cluster(num_nodes=2, node_memory_mb=1024)
        rm = ResourceManager(cluster)
        quota = 512.0
        rm.set_tenant_quota("a", quota)
        usage = {"a": 0.0, "b": 0.0}
        for tenant, mb in requests:
            try:
                container = rm.try_allocate(mb, tenant=tenant)
            except Exception:
                continue
            if container is not None:
                usage[tenant] += container.memory_mb
            assert usage["a"] <= quota
