"""The trace-driven replay harness: record live server sessions to a
JSON trace, then replay them as a deterministic simulator fixture."""

import pytest

from repro.api import ElasticMLSession, SessionConfig
from repro.cluster import small_cluster
from repro.elastic import (
    ElasticTrace,
    TraceRecorder,
    TraceSimulator,
)
from repro.serving import ElasticMLServer, Submission
from repro.workloads import prepare_inputs, scenario


@pytest.fixture(scope="module")
def recorded():
    """Drive a live multi-tenant server with recording on; returns the
    recorded trace plus the live results for comparison."""
    cluster = small_cluster(num_nodes=2, node_memory_mb=2048)
    recorder = TraceRecorder({"LinregDS": ("XS", 100)})
    server = ElasticMLServer(
        cluster=cluster, config=SessionConfig(elastic=True),
        trace=True, recorder=recorder, sample_cap=64,
    )
    args = prepare_inputs(
        server.hdfs, "LinregDS", scenario("XS", cols=100)
    )
    for index in range(4):
        server.submit(Submission(
            tenant=f"tenant-{index % 2}", script="LinregDS", args=args,
            adapt=False,
        ))
    results = server.drain()
    server.shutdown()
    assert all(r.ok for r in results)
    return recorder.trace(name="recorded"), results


class TestRecorder:
    def test_every_submission_recorded(self, recorded):
        trace, results = recorded
        assert len(trace.entries) == len(results)
        assert {e.tenant for e in trace.entries} == {
            "tenant-0", "tenant-1"
        }
        assert all(e.script == "LinregDS" for e in trace.entries)
        assert all(e.size == "XS" and e.cols == 100
                   for e in trace.entries)

    def test_arrivals_monotone(self, recorded):
        trace, _ = recorded
        arrivals = [e.arrival_s for e in trace.entries]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_unregistered_script_raises(self):
        recorder = TraceRecorder({"LinregDS": ("XS", 100)})
        with pytest.raises(KeyError):
            recorder.record(Submission(tenant="t", script="KMeans"))


class TestJSONRoundtrip:
    def test_save_load_roundtrip(self, recorded, tmp_path):
        trace, _ = recorded
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ElasticTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.entries == trace.entries


class TestReplay:
    def test_replay_is_deterministic(self, recorded, tmp_path):
        trace, _ = recorded
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ElasticTrace.load(path)
        cluster = small_cluster(num_nodes=2, node_memory_mb=2048)
        first, second = [
            TraceSimulator(loaded, cluster=cluster, elastic=True).run()
            for _ in range(2)
        ]
        assert first.summary() == second.summary()
        assert [
            (r.entry.tenant, r.admitted_s, r.finish_s, r.fraction,
             tuple(r.decisions))
            for r in first.runs
        ] == [
            (r.entry.tenant, r.admitted_s, r.finish_s, r.fraction,
             tuple(r.decisions))
            for r in second.runs
        ]

    def test_replay_matches_live_outputs(self, recorded):
        """Replayed runs produce the very prints the live server did —
        elasticity and interleaving perturb time, never results."""
        trace, live_results = recorded
        cluster = small_cluster(num_nodes=2, node_memory_mb=2048)
        replayed = TraceSimulator(
            trace, cluster=cluster, elastic=True
        ).run()
        assert len(replayed.runs) == len(live_results)
        live_prints = {
            tuple(r.outcome.result.prints) for r in live_results
        }
        sim_prints = {
            tuple(r.outcome.result.prints) for r in replayed.runs
        }
        assert sim_prints == live_prints

    def test_replay_matches_serial_session(self, recorded):
        trace, _ = recorded
        cluster = small_cluster(num_nodes=2, node_memory_mb=2048)
        session = ElasticMLSession(cluster=cluster, sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        ref = session.run("LinregDS", args, adapt=False)
        replayed = TraceSimulator(
            trace, cluster=cluster, elastic=True
        ).run()
        for run in replayed.runs:
            assert run.outcome.result.prints == ref.prints
