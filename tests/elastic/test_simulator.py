"""Scenario tests for the deterministic virtual-time trace simulator:
determinism, capacity/quota safety, and the static-vs-Brain comparison."""

import pytest

from repro.cluster import ClusterLoad, small_cluster
from repro.elastic import TraceSimulator, bursty_trace, simulate_arms

TRACE = bursty_trace(
    seed=11, tenants=10, bursts=2, burst_gap_s=150.0, intra_gap_s=1.5
)


def tiny_cluster():
    return small_cluster(num_nodes=1, node_memory_mb=1024)


def run_tuple(run):
    return (
        run.entry.tenant, run.entry.script, run.admitted_s, run.finish_s,
        run.container_mb, run.fraction, run.rescales, tuple(run.decisions),
        tuple(run.outcome.result.prints),
    )


class TestDeterminism:
    @pytest.mark.parametrize("elastic", [False, True])
    def test_two_simulations_identical(self, elastic):
        results = [
            TraceSimulator(
                TRACE, cluster=tiny_cluster(), elastic=elastic
            ).run()
            for _ in range(2)
        ]
        a, b = results
        assert a.makespan_s == b.makespan_s
        assert a.utilization == b.utilization
        assert [run_tuple(r) for r in a.runs] == [
            run_tuple(r) for r in b.runs
        ]
        assert a.counters == b.counters

    def test_background_load_deterministic(self):
        background = ClusterLoad(
            schedule=[(0.0, 0.0), (150.0, 0.8), (185.0, 0.0)]
        )
        a, b = [
            TraceSimulator(
                TRACE, cluster=tiny_cluster(), elastic=True,
                background=background,
            ).run()
            for _ in range(2)
        ]
        assert [run_tuple(r) for r in a.runs] == [
            run_tuple(r) for r in b.runs
        ]
        assert a.summary() == b.summary()


class TestCapacitySafety:
    @pytest.mark.parametrize("elastic", [False, True])
    def test_concurrent_containers_within_capacity(self, elastic):
        cluster = tiny_cluster()
        result = TraceSimulator(
            TRACE, cluster=cluster, elastic=elastic
        ).run()
        assert result.runs
        for probe in result.runs:
            active = sum(
                other.container_mb for other in result.runs
                if other.admitted_s <= probe.admitted_s < other.finish_s
            )
            assert active <= cluster.total_memory_mb

    def test_tenant_quota_respected(self):
        cluster = tiny_cluster()
        quota_share = 0.5
        result = TraceSimulator(
            TRACE, cluster=cluster, elastic=True, quota_share=quota_share,
        ).run()
        quota = max(
            cluster.min_allocation_mb,
            int(quota_share * cluster.total_memory_mb),
        )
        assert result.runs
        for probe in result.runs:
            tenant_active = sum(
                other.container_mb for other in result.runs
                if other.entry.tenant == probe.entry.tenant
                and other.admitted_s <= probe.admitted_s < other.finish_s
            )
            assert tenant_active <= quota

    def test_impossible_quota_rejects(self):
        # quota below the smallest admissible container: every entry is
        # rejected up front instead of deadlocking the FIFO queue
        cluster = tiny_cluster()
        result = TraceSimulator(
            TRACE, cluster=cluster, elastic=False, quota_share=0.05,
        ).run()
        assert not result.runs
        assert len(result.rejected) == len(TRACE.entries)


class TestComparison:
    def test_brain_beats_static_on_bursty_trace(self):
        static, brain = simulate_arms(TRACE, cluster=tiny_cluster())
        assert len(static.runs) == len(TRACE.entries)
        assert len(brain.runs) == len(TRACE.entries)
        assert (
            brain.makespan_s < static.makespan_s
            or brain.utilization > static.utilization
        )
        assert brain.summary()["elastic_admissions"] > 0
        assert static.summary()["rescales"] == 0

    def test_outputs_identical_across_arms(self):
        static, brain = simulate_arms(TRACE, cluster=tiny_cluster())
        static_prints = {
            (r.entry.tenant, r.entry.arrival_s): tuple(
                r.outcome.result.prints
            )
            for r in static.runs
        }
        brain_prints = {
            (r.entry.tenant, r.entry.arrival_s): tuple(
                r.outcome.result.prints
            )
            for r in brain.runs
        }
        assert static_prints == brain_prints

    def test_background_spike_causes_shrinks(self):
        background = ClusterLoad(
            schedule=[(0.0, 0.0), (150.0, 0.8), (185.0, 0.0)]
        )
        result = TraceSimulator(
            TRACE, cluster=tiny_cluster(), elastic=True,
            background=background,
        ).run()
        assert result.counters.get("elastic.shrinks", 0) > 0
        assert result.counters.get("elastic.rescales", 0) > 0
