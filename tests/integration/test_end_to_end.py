"""Integration tests: the paper's end-to-end behaviours.

These assert the *shape* claims of the evaluation section on scaled
scenarios: Opt tracks the best static baseline, avoids over-provisioning,
runtime adaptation rescues unknown-ridden programs, and throughput
scales with right-sized containers.
"""

import pytest

from repro import ElasticMLSession
from repro.cluster import paper_cluster
from repro.cluster.events import simulate_throughput
from repro.compiler import compile_program
from repro.optimizer import ResourceAdapter, ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.scripts import load_script
from repro.workloads import paper_baselines, prepare_inputs, scenario


def run_modes(script, scn, modes=("baselines", "opt"), adapt=False,
              glm_family=2):
    """Execute a script under all baselines and/or the optimizer."""
    cluster = paper_cluster()
    times = {}
    resources = {}

    def execute(rc, adapter=None, compiled=None, hdfs=None):
        if compiled is None:
            hdfs = SimulatedHDFS(sample_cap=64)
            args = prepare_inputs(hdfs, script, scn, glm_family=glm_family)
            compiled = compile_program(load_script(script), args,
                                       hdfs.input_meta())
        interp = Interpreter(cluster, hdfs=hdfs, sample_cap=64,
                             adapter=adapter)
        return interp.run(compiled, rc)

    if "baselines" in modes:
        for name, rc in paper_baselines(cluster).items():
            times[name] = execute(rc).total_time
            resources[name] = rc
    if "opt" in modes:
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, script, scn, glm_family=glm_family)
        compiled = compile_program(load_script(script), args,
                                   hdfs.input_meta())
        opt = ResourceOptimizer(cluster).optimize(compiled)
        adapter = (
            ResourceAdapter(ResourceOptimizer(cluster)) if adapt else None
        )
        # reuse the optimized program: per-block MR entries reference
        # its block ids
        result = execute(opt.resource, adapter, compiled, hdfs)
        times["Opt"] = result.total_time
        resources["Opt"] = opt.resource
        times["_result"] = result
    return times, resources


class TestEndToEndBaselines:
    @pytest.mark.parametrize("script", ["LinregDS", "LinregCG", "L2SVM"])
    def test_opt_tracks_best_baseline_on_M(self, script):
        """Figures 7-9: Opt achieves execution time close to the best
        baseline (within 25%) on scenario M dense1000."""
        times, _ = run_modes(script, scenario("M"))
        best = min(v for k, v in times.items() if k.startswith("B-"))
        assert times["Opt"] <= best * 1.25

    def test_opt_avoids_over_provisioning(self):
        """Opt requests far less memory than B-LL while staying
        competitive (the Section 5.3 motivation)."""
        times, resources = run_modes("LinregCG", scenario("S"))
        bll_total = resources["B-LL"].cp_heap_mb
        assert resources["Opt"].cp_heap_mb < bll_total / 4

    def test_different_baselines_win_on_different_scripts(self):
        """The core motivation (Figure 1): no static configuration is
        best for both DS (distributed) and CG (in-memory)."""
        ds_times, _ = run_modes("LinregDS", scenario("M"))
        cg_times, _ = run_modes("LinregCG", scenario("M"))

        def best_baseline(times):
            candidates = {k: v for k, v in times.items() if k.startswith("B-")}
            return min(candidates, key=candidates.get)

        ds_best = best_baseline(ds_times)
        cg_best = best_baseline(cg_times)
        # DS prefers small CP, CG prefers large CP
        assert ds_best in ("B-SS", "B-SL")
        assert cg_best in ("B-LS", "B-LL")

    def test_sparse_prefers_in_memory(self):
        """Figure 7(b)/(d): sparse scenarios execute in memory even at
        moderate CP sizes — Opt picks a small-but-sufficient CP."""
        times, resources = run_modes("LinregDS", scenario("M", sparse=True))
        assert times["Opt"] <= min(
            v for k, v in times.items() if k.startswith("B-")
        ) * 1.3


class TestRuntimeAdaptation:
    def test_mlogreg_rescued_by_adaptation(self):
        """Figure 15: with unknowns, Opt alone is far from the best
        baseline; ReOpt with <= 2 migrations comes close."""
        no_adapt, _ = run_modes("MLogreg", scenario("M"), modes=("opt",))
        with_adapt, _ = run_modes(
            "MLogreg", scenario("M"), modes=("opt",), adapt=True
        )
        result = with_adapt["_result"]
        assert result.migrations in (1, 2)
        assert with_adapt["Opt"] < no_adapt["Opt"] * 0.7

    def test_adaptation_no_regression_when_not_needed(self):
        """Figure 15(a): no negative impact on cases where no
        adaptation is required."""
        no_adapt, _ = run_modes("LinregCG", scenario("S"), modes=("opt",))
        with_adapt, _ = run_modes(
            "LinregCG", scenario("S"), modes=("opt",), adapt=True
        )
        assert with_adapt["_result"].migrations == 0
        assert with_adapt["Opt"] == pytest.approx(no_adapt["Opt"], rel=0.05)


class TestThroughputIntegration:
    def test_opt_throughput_beats_bll(self):
        """Figure 12 shape: right-sized Opt containers admit 6x more
        parallel applications than B-LL."""
        cluster = paper_cluster()
        opt_out = simulate_throughput(
            cluster, 64, 8, app_duration=30.0,
            container_mb=cluster.container_mb_for_heap(8192),
        )
        bll_out = simulate_throughput(
            cluster, 64, 8, app_duration=30.0,
            container_mb=cluster.max_allocation_mb,
        )
        assert opt_out.max_concurrency == 36
        assert bll_out.max_concurrency == 6
        assert opt_out.apps_per_minute > 5 * bll_out.apps_per_minute


class TestSessionLevel:
    def test_full_pipeline_produces_model(self):
        session = ElasticMLSession(sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "L2SVM", scenario("S", cols=100)
        )
        outcome = session.run("L2SVM", args)
        assert session.hdfs.exists(args["model"])
        assert outcome.result.total_time > 0
