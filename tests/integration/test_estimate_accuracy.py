"""Estimate-vs-actual consistency: for programs whose sizes are fully
known at compile time, the optimizer's what-if estimate and the runtime
simulator must agree closely — they share the component models and only
diverge through buffer-pool effects and loop-iteration defaults.
"""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.compiler.pipeline import compile_plans
from repro.cost import CostModel
from repro.runtime import Interpreter, SimulatedHDFS
from repro.scripts import load_script
from repro.workloads import paper_baselines, prepare_inputs, scenario


def estimate_and_actual(script, scn, rc, startup=12.0):
    cluster = paper_cluster()
    hdfs = SimulatedHDFS(sample_cap=128)
    args = prepare_inputs(hdfs, script, scn)
    compiled = compile_program(load_script(script), args, hdfs.input_meta(),
                               rc)
    estimate = CostModel(cluster).estimate_program(compiled, rc)
    result = Interpreter(cluster, hdfs=hdfs, sample_cap=128).run(compiled, rc)
    # the estimate excludes AM startup; compare against the rest
    actual = result.total_time - result.breakdown.get("startup", 0.0)
    return estimate, actual, result


class TestKnownSizePrograms:
    @pytest.mark.parametrize("cp_mb,mr_mb", [(512, 2048), (20480, 2048)])
    def test_linreg_ds_estimate_close(self, cp_mb, mr_mb):
        estimate, actual, _ = estimate_and_actual(
            "LinregDS", scenario("M"), ResourceConfig(cp_mb, mr_mb)
        )
        assert estimate == pytest.approx(actual, rel=0.35)

    def test_linreg_cg_large_cp_close(self):
        # fully in-memory plan, 5 actual iterations vs the default 10
        # assumed by the estimate: actual must be bounded by the estimate
        estimate, actual, result = estimate_and_actual(
            "LinregCG", scenario("M"), ResourceConfig(20480, 2048)
        )
        assert result.mr_jobs == 0
        assert actual <= estimate * 1.1

    def test_l2svm_small_scenario(self):
        estimate, actual, _ = estimate_and_actual(
            "L2SVM", scenario("S"), ResourceConfig(8192, 1024)
        )
        # iterative script: estimate assumes 10 outer iterations, the
        # script converges in <= 5 -> estimate is an upper bound
        assert actual <= estimate * 1.2

    def test_estimates_rank_configurations_correctly(self):
        """Even when absolute estimates drift, their *ordering* across
        configurations must match the runtime's ordering — that is all
        the optimizer needs."""
        scn = scenario("M")
        cluster = paper_cluster()
        configs = [
            ResourceConfig(512, 2048),
            ResourceConfig(20480, 2048),
        ]
        estimates = []
        actuals = []
        for rc in configs:
            estimate, actual, _ = estimate_and_actual("LinregCG", scn, rc)
            estimates.append(estimate)
            actuals.append(actual)
        assert (estimates[0] > estimates[1]) == (actuals[0] > actuals[1])


class TestDivergenceSources:
    def test_unknown_programs_underestimated(self):
        """With unknowns the initial estimate is meaningless (provisional
        blocks excluded): actual exceeds it — the gap runtime
        adaptation exists to close."""
        estimate, actual, result = estimate_and_actual(
            "MLogreg", scenario("M"), ResourceConfig(512, 2048)
        )
        assert estimate < actual

    def test_eviction_gap_on_small_heap(self):
        """Buffer-pool evictions are charged at runtime but only
        approximated in the estimate: under memory pressure the actual
        exceeds the estimate."""
        estimate, actual, result = estimate_and_actual(
            "L2SVM", scenario("M", cols=100, sparse=True),
            ResourceConfig(4096, 512),
        )
        if result.evictions:
            assert actual > estimate
