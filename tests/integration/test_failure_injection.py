"""Failure-injection tests: malformed inputs, infeasible configurations,
and mid-run error conditions must fail loudly and precisely."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ResourceConfig, paper_cluster, small_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.errors import (
    ClusterError,
    CompilerError,
    DMLSyntaxError,
    ExecutionError,
    ReproError,
    ValidationError,
)
from repro.optimizer import ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import MatrixObject


def make_hdfs(**matrices):
    hdfs = SimulatedHDFS(sample_cap=32)
    for name, data in matrices.items():
        obj = MatrixObject.from_sample(np.asarray(data, dtype=float))
        hdfs.put(name, obj.mc, obj.data)
    return hdfs


class TestCompileTimeFailures:
    def test_all_errors_share_base_class(self):
        for exc in (DMLSyntaxError, ValidationError, CompilerError,
                    ExecutionError, ClusterError):
            assert issubclass(exc, ReproError)

    def test_syntax_error_surfaces(self):
        with pytest.raises(DMLSyntaxError):
            compile_program("x = = 1", {}, {})

    def test_validation_error_surfaces(self):
        with pytest.raises(ValidationError):
            compile_program("y = undefined_var + 1", {}, {})

    def test_missing_script_argument(self):
        with pytest.raises(CompilerError):
            compile_program("X = read($X)", {}, {})

    def test_write_target_must_be_constant(self):
        # a data-dependent filename cannot be resolved at compile time
        source = 'X = read($X)\nname = "out" + sum(X)\nwrite(X, name)'
        with pytest.raises((CompilerError, ValidationError)):
            compile_program(source, {"X": "f"}, {})

    def test_constant_filename_via_local_is_fine(self):
        # a string constant bound to a local resolves through the block
        source = 'X = read($X)\nname = "out"\nwrite(X, name)'
        compiled = compile_program(
            source, {"X": "f"}, {"f": MatrixCharacteristics(2, 2, 4)}
        )
        assert compiled is not None


class TestRuntimeFailures:
    def test_missing_hdfs_file(self):
        hdfs = make_hdfs()
        compiled = compile_program(
            "X = read($X)\nprint(sum(X))", {"X": "ghost"},
            {"ghost": MatrixCharacteristics(4, 4, 16)},
            ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        with pytest.raises(ExecutionError, match="ghost"):
            interp.run(compiled, ResourceConfig(512, 512))

    def test_stop_statement_aborts(self):
        hdfs = make_hdfs(X=np.ones((4, 4)))
        source = """
X = read($X)
if (sum(X) > 0) {
  stop("negative determinant")
}
"""
        compiled = compile_program(source, {"X": "X"}, hdfs.input_meta(),
                                   ResourceConfig(512, 512))
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        with pytest.raises(ExecutionError, match="negative determinant"):
            interp.run(compiled, ResourceConfig(512, 512))

    def test_logical_dim_mismatch_detected(self):
        # X (4x4) %*% y (3x1): invalid logical shapes must raise
        hdfs = make_hdfs(X=np.ones((4, 4)), y=np.ones((3, 1)))
        compiled = compile_program(
            "X = read($X)\ny = read($y)\nprint(sum(X %*% y))",
            {"X": "X", "y": "y"}, hdfs.input_meta(),
            ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        with pytest.raises(ExecutionError, match="non-conformable"):
            interp.run(compiled, ResourceConfig(512, 512))

    def test_infinite_loop_guard(self):
        hdfs = make_hdfs()
        compiled = compile_program(
            "flag = TRUE\nwhile (flag) { x = 1 }", {}, {},
            ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        with pytest.raises(ExecutionError, match="iterations"):
            interp.run(compiled, ResourceConfig(512, 512))


class TestClusterFailures:
    def test_container_request_above_maximum(self):
        cluster = small_cluster(node_memory_mb=2048)
        with pytest.raises(ClusterError):
            cluster.validate_heap_request(10**6)

    def test_optimizer_respects_tiny_cluster(self):
        # a cluster whose max allocation cannot hold the data: the
        # optimizer still returns the best feasible configuration
        cluster = small_cluster(num_nodes=2, node_memory_mb=1024)
        hdfs = SimulatedHDFS(sample_cap=32)
        hdfs.create_dense_input("X", 10**6, 100)  # 800 MB input
        compiled = compile_program(
            "X = read($X)\nprint(sum(X %*% matrix(1, rows=ncol(X), cols=1)))",
            {"X": "X"}, hdfs.input_meta(),
        )
        result = ResourceOptimizer(cluster).optimize(compiled)
        assert result.resource is not None
        assert result.resource.cp_heap_mb <= cluster.max_heap_mb

    def test_invalid_cluster_config(self):
        with pytest.raises(ClusterError):
            ClusterConfig(num_nodes=-1)


class TestNumericalRobustness:
    def test_division_by_zero_matrix_does_not_crash(self, tmp_path):
        hdfs = make_hdfs(X=np.zeros((4, 4)))
        compiled = compile_program(
            "X = read($X)\nZ = 1 / X\nprint(sum(Z))",
            {"X": "X"}, hdfs.input_meta(), ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        result = interp.run(compiled, ResourceConfig(512, 512))
        value = float(result.prints[0])
        assert np.isfinite(value)

    def test_log_of_zero_sanitized(self):
        hdfs = make_hdfs(X=np.zeros((3, 3)))
        compiled = compile_program(
            "X = read($X)\nZ = log(X + 0)\nprint(sum(Z))",
            {"X": "X"}, hdfs.input_meta(), ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        result = interp.run(compiled, ResourceConfig(512, 512))
        assert np.isfinite(float(result.prints[0]))

    def test_huge_exponent_overflow_sanitized(self):
        hdfs = make_hdfs(X=np.full((3, 3), 1000.0))
        compiled = compile_program(
            "X = read($X)\nZ = exp(X)\nprint(sum(Z))",
            {"X": "X"}, hdfs.input_meta(), ResourceConfig(512, 512),
        )
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        result = interp.run(compiled, ResourceConfig(512, 512))
        assert np.isfinite(float(result.prints[0]))
