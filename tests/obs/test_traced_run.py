"""Integration tests: a traced session run produces telemetry consistent
with the result objects the stack already reports."""

import json

import pytest

from repro import ElasticMLSession, Tracer
from repro.obs import NULL_TRACER, get_tracer
from repro.workloads import prepare_inputs, scenario


@pytest.fixture(scope="module")
def traced_linregcg():
    session = ElasticMLSession(sample_cap=64, trace=True)
    args = prepare_inputs(session.hdfs, "LinregCG", scenario("S", cols=100))
    return session.run("LinregCG", args)


def _span_names(spans):
    names = []
    for span in spans:
        names.append(span.name)
        names.extend(_span_names(span.children))
    return names


class TestTracedRun:
    def test_trace_attached_to_outcome(self, traced_linregcg):
        assert isinstance(traced_linregcg.trace, Tracer)
        assert traced_linregcg.trace.enabled

    def test_span_tree_has_run_phases(self, traced_linregcg):
        names = _span_names(traced_linregcg.trace.roots)
        assert "session.run" in names
        assert "compile" in names
        assert "optimize" in names
        assert "execute" in names
        assert "optimizer.optimize" in names
        assert any(n.startswith("block:") for n in names)

    def test_counters_match_execution_result(self, traced_linregcg):
        trace = traced_linregcg.trace
        result = traced_linregcg.result
        compiled = traced_linregcg.compiled
        num_blocks = sum(1 for _ in compiled.last_level_blocks())
        # recompile.dynamic = the AM-startup plan regeneration (one per
        # generic block) + in-loop dynamic recompilations
        assert trace.counter("recompile.dynamic") == (
            num_blocks + result.recompilations
        )
        assert trace.counter("bufferpool.evictions") == result.evictions
        assert trace.counter("bufferpool.restores") == result.buffer_restores
        assert trace.counter("runtime.mr_jobs") == result.mr_jobs

    def test_counters_match_optimizer_stats(self, traced_linregcg):
        trace = traced_linregcg.trace
        stats = traced_linregcg.optimizer_result.stats
        # the session's cost.invocations also covers runtime adaptation,
        # so it is at least the optimizer's own count
        assert trace.counter("cost.invocations") >= stats.cost_invocations
        assert trace.counter("compile.block_compilations") >= (
            stats.block_compilations
        )
        assert trace.counter("optimizer.grid_points") > 0
        assert trace.counter("optimizer.runs") >= 1

    def test_required_counters_nonzero(self, traced_linregcg):
        trace = traced_linregcg.trace
        assert trace.counter("cost.invocations") > 0
        assert trace.counter("bufferpool.hits") > 0
        assert trace.counter("recompile.dynamic") > 0
        assert trace.counter("runtime.cp_instructions") > 0
        assert any(
            name.startswith("hdfs.bytes_read.") and value > 0
            for name, value in trace.counters.items()
        )

    def test_grid_point_events_recorded(self, traced_linregcg):
        trace = traced_linregcg.trace
        points = [
            e for e in trace.events if e["event"] == "optimizer.grid_point"
        ]
        assert len(points) == trace.counter("optimizer.grid_points")
        assert all(p["estimated_cost_s"] > 0 for p in points)

    def test_trace_json_export_round_trips(self, traced_linregcg):
        text = traced_linregcg.trace.to_json()
        data = json.loads(text)
        assert data["counters"]["bufferpool.hits"] > 0
        restored = Tracer.from_json(text)
        assert restored.counters == dict(traced_linregcg.trace.counters)

    def test_render_includes_phases_and_counters(self, traced_linregcg):
        text = traced_linregcg.trace.render()
        assert "session.run" in text
        assert "optimize" in text
        assert "cost.invocations" in text


class TestTracingModes:
    def test_untraced_run_collects_nothing(self):
        session = ElasticMLSession(sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        assert outcome.trace is None
        assert get_tracer() is NULL_TRACER

    def test_fresh_tracer_per_run(self):
        session = ElasticMLSession(sample_cap=64, trace=True)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        first = session.run("LinregDS", args)
        second = session.run("LinregDS", args)
        assert first.trace is not second.trace

    def test_shared_tracer_accumulates(self):
        shared = Tracer()
        # opt_cache=None: the second identical run must re-enumerate for
        # optimizer.runs to double (the cross-run cache would skip it)
        session = ElasticMLSession(sample_cap=64, trace=shared, opt_cache=None)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        first = session.run("LinregDS", args)
        runs_after_one = shared.counter("optimizer.runs")
        second = session.run("LinregDS", args)
        assert first.trace is shared and second.trace is shared
        assert shared.counter("optimizer.runs") == 2 * runs_after_one

    def test_global_tracer_restored_after_traced_run(self):
        session = ElasticMLSession(sample_cap=64, trace=True)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        session.run("LinregDS", args)
        assert get_tracer() is NULL_TRACER
