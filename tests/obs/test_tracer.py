"""Unit tests for the tracing/metrics primitives in repro.obs."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    merge_gauge_values,
    render_trace,
    set_tracer,
    use_tracer,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_durations_cover_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, = tracer.roots
        inner, = outer.children
        assert outer.duration > inner.duration > 0
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.roots[0].duration is not None
        assert tracer.current_span is None

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", kind="block") as span:
            span.set("sim_s", 1.5)
        assert tracer.roots[0].attrs == {"kind": "block", "sim_s": 1.5}

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]


class TestMetrics:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.incr("bufferpool.hits")
        tracer.incr("bufferpool.hits", 4)
        tracer.incr("hdfs.bytes_read.csv", 1000)
        assert tracer.counter("bufferpool.hits") == 5
        assert tracer.counter("hdfs.bytes_read.csv") == 1000
        assert tracer.counter("never.fired") == 0
        assert tracer.counter("never.fired", default=-1) == -1

    def test_gauges_overwrite(self):
        tracer = Tracer()
        tracer.gauge("yarn.used_mb", 2048)
        tracer.gauge("yarn.used_mb", 512)
        assert tracer.gauges["yarn.used_mb"] == 512

    def test_event_ring_buffer_is_bounded(self):
        tracer = Tracer(event_capacity=3)
        for i in range(5):
            tracer.event("grid_point", index=i)
        assert len(tracer.events) == 3
        assert [e["index"] for e in tracer.events] == [2, 3, 4]
        assert all(e["event"] == "grid_point" for e in tracer.events)


class TestNullTracer:
    def test_null_tracer_is_a_no_op(self):
        tracer = NullTracer()
        with tracer.span("anything", attr=1) as span:
            span.set("ignored", True)
            tracer.incr("counter")
            tracer.gauge("gauge", 1)
            tracer.event("event", field=1)
        assert tracer.roots == []
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert list(tracer.events) == []
        assert tracer.counter("counter") == 0

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False

    def test_null_span_is_reentrant(self):
        tracer = NullTracer()
        outer = tracer.span("a")
        with outer:
            with tracer.span("b"):
                pass
        with outer:
            pass


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(ValueError):
            with use_tracer(Tracer()):
                raise ValueError
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        set_tracer(Tracer())
        assert set_tracer(None) is NULL_TRACER
        assert get_tracer() is NULL_TRACER

    def test_nested_use_tracer(self):
        first, second = Tracer(), Tracer()
        with use_tracer(first):
            with use_tracer(second):
                assert get_tracer() is second
            assert get_tracer() is first


class TestExport:
    def _populated(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run", scope="test"):
            with tracer.span("step") as span:
                span.set("sim_s", 2.5)
        tracer.incr("cost.invocations", 7)
        tracer.gauge("yarn.used_mb", 4096)
        tracer.event("decision", migrate=True, benefit_s=1.25)
        return tracer

    def test_json_round_trip(self):
        tracer = self._populated()
        restored = Tracer.from_json(tracer.to_json())
        assert restored.to_dict() == tracer.to_dict()
        assert restored.counter("cost.invocations") == 7
        assert restored.gauges["yarn.used_mb"] == 4096
        assert list(restored.events) == [
            {"event": "decision", "migrate": True, "benefit_s": 1.25}
        ]
        root = restored.roots[0]
        assert root.name == "run"
        assert root.attrs == {"scope": "test"}
        assert root.children[0].attrs == {"sim_s": 2.5}
        assert root.duration == pytest.approx(tracer.roots[0].duration)

    def test_to_json_is_valid_json(self):
        data = json.loads(self._populated().to_json(indent=2))
        assert set(data) == {"spans", "counters", "gauges", "events"}

    def test_span_dict_round_trip(self):
        span = Span("s", {"a": 1})
        span.start, span.end = 1.0, 3.0
        child = Span("c")
        child.start, child.end = 1.5, 2.0
        span.children.append(child)
        restored = Span.from_dict(span.to_dict())
        assert restored.to_dict() == span.to_dict()
        assert restored.duration == 2.0


class TestRender:
    def test_render_shows_spans_and_counters(self):
        tracer = Tracer(clock=FakeClock(step=0.001))
        with tracer.span("session.run"):
            with tracer.span("execute"):
                for i in range(3):
                    with tracer.span("block:5") as span:
                        span.set("sim_s", 1.0)
        tracer.incr("bufferpool.hits", 42)
        text = render_trace(tracer)
        assert "session.run" in text
        assert "bufferpool.hits" in text
        assert "42" in text
        # repeated same-named siblings aggregate with a multiplicity
        assert "block:5 ×3" in text
        assert "[sim_s=3" in text  # numeric attrs sum across merged spans

    def test_render_method_matches_function(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        assert tracer.render() == render_trace(tracer)


class TestThreadLocalTracer:
    def test_use_tracer_is_thread_local(self):
        """A use_tracer override in one thread must not leak into
        another thread's active tracer (concurrent serving tenants)."""
        import threading

        main_tracer = Tracer()
        seen = {}
        barrier = threading.Barrier(2)

        def worker(name):
            tracer = Tracer()
            with use_tracer(tracer):
                barrier.wait()  # both overrides installed simultaneously
                get_tracer().incr(f"count.{name}")
                seen[name] = get_tracer()

        with use_tracer(main_tracer):
            threads = [
                threading.Thread(target=worker, args=(f"w{i}",))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert get_tracer() is main_tracer
        assert seen["w0"] is not seen["w1"]
        assert seen["w0"].counter("count.w0") == 1
        assert seen["w0"].counter("count.w1") == 0
        assert main_tracer.counters == {}

    def test_set_tracer_default_visible_in_threads(self):
        """set_tracer installs the process default, which worker
        threads without an override fall back to."""
        import threading

        shared = Tracer()
        set_tracer(shared)
        try:
            found = []
            thread = threading.Thread(
                target=lambda: found.append(get_tracer())
            )
            thread.start()
            thread.join()
            assert found[0] is shared
        finally:
            set_tracer(None)

    def test_thread_override_beats_process_default(self):
        default = Tracer()
        override = Tracer()
        set_tracer(default)
        try:
            with use_tracer(override):
                assert get_tracer() is override
            assert get_tracer() is default
        finally:
            set_tracer(None)


class TestAbsorb:
    def test_absorb_accumulates_counters_and_gauges(self):
        server = Tracer()
        server.incr("serving.completed", 2)
        sub = Tracer()
        sub.incr("serving.completed")
        sub.incr("serving.admitted")
        sub.gauge("queue.depth", 7)
        server.absorb(sub)
        assert server.counter("serving.completed") == 3
        assert server.counter("serving.admitted") == 1
        assert server.gauges["queue.depth"] == 7

    def test_absorb_adopts_root_spans(self):
        server = Tracer()
        sub = Tracer()
        with sub.span("tenant.alice"):
            pass
        server.absorb(sub)
        assert [span.name for span in server.roots] == ["tenant.alice"]

    def test_absorb_without_spans(self):
        server = Tracer()
        sub = Tracer()
        with sub.span("tenant.bob"):
            sub.incr("x")
        server.absorb(sub, spans=False)
        assert server.roots == []
        assert server.counter("x") == 1

    def test_absorb_extends_events(self):
        server = Tracer()
        sub = Tracer()
        sub.event("fault.injected", site="hdfs")
        server.absorb(sub)
        assert len(server.events) == 1


class TestGaugeMerge:
    """absorb() must merge gauges order-independently (regression:
    last-write-wins made the fold depend on tenant drain order)."""

    def test_absorb_keeps_larger_value(self):
        server = Tracer()
        a, b = Tracer(), Tracer()
        a.gauge("queue.depth", 7)
        b.gauge("queue.depth", 3)
        server.absorb(a)
        server.absorb(b)
        assert server.gauges["queue.depth"] == 7

    def test_absorb_order_independent_under_shuffle(self):
        import random

        values = [3, 41, 7, 0, 19, 5]
        finals = set()
        for seed in range(8):
            subs = []
            for value in values:
                sub = Tracer()
                sub.gauge("yarn.used_mb", value)
                subs.append(sub)
            random.Random(seed).shuffle(subs)
            server = Tracer()
            for sub in subs:
                server.absorb(sub)
            finals.add(server.gauges["yarn.used_mb"])
        assert finals == {41}

    def test_nan_never_wins(self):
        nan = float("nan")
        assert merge_gauge_values(nan, 5) == 5
        assert merge_gauge_values(5, nan) == 5
        merged = merge_gauge_values(nan, nan)
        assert merged != merged  # both sides NaN: NaN is all there is

    def test_incomparable_types_merge_symmetrically(self):
        assert (merge_gauge_values("label", 3)
                == merge_gauge_values(3, "label"))

    def test_absorbing_fresh_tracer_keeps_gauges(self):
        server = Tracer()
        server.gauge("queue.depth", 9)
        server.absorb(Tracer())
        assert server.gauges["queue.depth"] == 9
