"""Unit tests for runtime resource adaptation (Section 4)."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler.pipeline import compile_program
from repro.optimizer import ResourceAdapter, ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS

MLOGREG_LIKE = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
B = matrix(0, rows=ncol(X), cols=ncol(Y))
i = 0
while (i < 3) {
  P = exp(X %*% B)
  P = P / rowSums(P)
  B = B - 0.1 * (t(X) %*% (P - Y))
  i = i + 1
}
write(B, $B, format="binary")
"""


@pytest.fixture
def cluster():
    return paper_cluster()


def run_with_adaptation(cluster, resource, adapt=True, rows=10**6,
                        cols=1000):
    hdfs = SimulatedHDFS(sample_cap=64)
    hdfs.create_dense_input("X", rows, cols, seed=1)
    hdfs.create_label_input("y", rows, num_classes=3, seed=2)
    args = {"X": "X", "y": "y", "B": "B"}
    compiled = compile_program(MLOGREG_LIKE, args, hdfs.input_meta())
    adapter = (
        ResourceAdapter(ResourceOptimizer(cluster)) if adapt else None
    )
    interp = Interpreter(cluster, hdfs=hdfs, sample_cap=64, adapter=adapter)
    return interp.run(compiled, resource)


class TestAdaptation:
    def test_migration_extends_cp_memory(self, cluster):
        start = ResourceConfig(512, 512)
        result = run_with_adaptation(cluster, start)
        assert result.migrations >= 1
        assert result.final_resource.cp_heap_mb > 512

    def test_adaptation_improves_over_static(self, cluster):
        start = ResourceConfig(512, 512)
        static = run_with_adaptation(cluster, start, adapt=False)
        adapted = run_with_adaptation(cluster, start, adapt=True)
        assert adapted.total_time < static.total_time

    def test_migration_cost_charged(self, cluster):
        result = run_with_adaptation(cluster, ResourceConfig(512, 512))
        if result.migrations:
            assert result.breakdown.get("migration", 0) > 0

    def test_few_migrations_suffice(self, cluster):
        """The paper: 'only up to two migrations were necessary'."""
        result = run_with_adaptation(cluster, ResourceConfig(512, 512))
        assert result.migrations <= 2

    def test_no_adaptation_when_well_provisioned(self, cluster):
        result = run_with_adaptation(cluster, ResourceConfig(30000, 4096))
        assert result.migrations == 0

    def test_small_data_no_migration_needed(self, cluster):
        # everything fits even a small CP: adaptation may update MR
        # configs but should not migrate
        result = run_with_adaptation(
            cluster, ResourceConfig(2048, 512), rows=10**4, cols=100
        )
        assert result.migrations == 0
