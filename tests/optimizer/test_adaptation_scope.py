"""Tests for the re-optimization scope heuristic (Section 4.2)."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.compiler import statement_blocks as SB
from repro.optimizer import ResourceAdapter, ResourceOptimizer

META = {
    "X": MatrixCharacteristics(10**5, 100, 10**7),
    "y": MatrixCharacteristics(10**5, 1, 10**5),
}
ARGS = {"X": "X", "y": "y"}

SOURCE = """
X = read($X)
y = read($y)
s0 = sum(X)
while (s0 > 0) {
  inner = 0
  while (inner < 3) {
    q = t(X) %*% (X %*% y)
    inner = inner + 1
  }
  s0 = s0 - 1
}
tail = sum(X) + 1
print(tail)
"""


@pytest.fixture
def adapter():
    return ResourceAdapter(ResourceOptimizer(paper_cluster()))


@pytest.fixture
def compiled():
    return compile_program(SOURCE, ARGS, META, ResourceConfig(512, 512))


def block_containing(compiled, needle):
    """Find the last-level block whose source mentions ``needle``."""
    from repro.compiler import hops as H

    for block in compiled.last_level_blocks():
        for hop in H.iter_dag(block.hop_roots):
            if isinstance(hop, H.DataOp) and hop.name == needle:
                if hop.kind is H.DataOpKind.TRANSIENT_WRITE:
                    return block
    raise AssertionError(f"no block writes {needle}")


class TestScope:
    def test_inner_block_expands_to_outer_loop(self, adapter, compiled):
        # the q-block lives in the doubly-nested loop: the scope starts
        # at the outermost while and runs to the end of the program
        q_block = block_containing(compiled, "q")
        scope = adapter._reopt_scope(compiled, q_block)
        assert isinstance(scope[0], SB.WhileBlock)
        # the trailing top-level block is included ("to the end of this
        # context")
        assert any(
            block is blk
            for blk in scope
            for block in [block_containing(compiled, "tail")]
        )

    def test_top_level_block_scopes_from_itself(self, adapter, compiled):
        tail_block = block_containing(compiled, "tail")
        scope = adapter._reopt_scope(compiled, tail_block)
        assert scope[0] is tail_block

    def test_earlier_blocks_excluded(self, adapter, compiled):
        q_block = block_containing(compiled, "q")
        scope = adapter._reopt_scope(compiled, q_block)
        first_block = list(compiled.last_level_blocks())[0]
        assert all(
            first_block is not blk
            for top in scope
            for blk in top.all_blocks()
        )

    def test_function_context_scoped_to_function(self, adapter):
        source = """
helper = function(Matrix[double] A) return (double s) {
  B = A * 2
  s = sum(B)
}
X = read($X)
out = helper(X)
print(out)
"""
        compiled = compile_program(source, {"X": "X"},
                                   {"X": META["X"]}, ResourceConfig(512, 512))
        func_block = compiled.functions["helper"].blocks[0]
        inner = next(iter(func_block.last_level_blocks()))
        scope = adapter._reopt_scope(compiled, inner)
        # scope stays within the function's block list
        func_blocks = set(
            id(b) for b in compiled.functions["helper"].blocks
        )
        assert all(id(b) in func_blocks for b in scope)

    def test_unknown_block_returns_empty(self, adapter, compiled):
        ghost = SB.GenericBlock()
        assert adapter._reopt_scope(compiled, ghost) == []
