"""Property-based tests (hypothesis) for the cost model and plan cache.

Seed-pinned for CI: ``derandomize=True`` makes every run draw the same
examples, so failures reproduce deterministically.

Scope note: cost is *not* globally monotone in memory — a bigger CP
heap needs a bigger container, which lowers MR task parallelism, so the
end-to-end cost of a *re-optimized* program can go up with more memory
(that trade-off is the paper's point).  The provable monotonicities are
narrower and tested here: for a **fixed** compiled plan, growing the CP
budget only reduces buffer-pool pressure, so the estimated cost never
increases; and the IO model is monotone in size and parallelism.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.cost import CostModel, io_model
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.common import MatrixCharacteristics
from repro.optimizer import ResourceOptimizer
from repro.runtime import SimulatedHDFS

SETTINGS = settings(deadline=None, derandomize=True, max_examples=25)

_SRC = """
X = read($X)
s = sum(X)
Y = X * 2 + s
z = sum(t(Y) %*% Y)
print(z)
"""


def _compile_fixed_plan():
    """A program compiled once at a generous CP heap (all-CP plan);
    cached at module level so hypothesis examples share it."""
    hdfs = SimulatedHDFS(sample_cap=64)
    hdfs.create_dense_input("data/X", 400000, 500)  # ~1.6 GB dense
    compiled = compile_program(
        _SRC, {"X": "data/X"}, hdfs.input_meta(),
        ResourceConfig(45000, 1024),
    )
    return compiled


_FIXED = {}


def fixed_plan():
    if "compiled" not in _FIXED:
        _FIXED["compiled"] = _compile_fixed_plan()
        _FIXED["model"] = CostModel(paper_cluster(), DEFAULT_PARAMETERS)
    return _FIXED["compiled"], _FIXED["model"]


class TestFixedPlanCostMonotonicity:
    heaps = st.floats(min_value=512, max_value=50000)

    @given(a=heaps, b=heaps)
    @SETTINGS
    def test_more_cp_memory_never_costs_more(self, a, b):
        lo, hi = sorted((a, b))
        compiled, model = fixed_plan()
        cost_lo = model.estimate_program(compiled, ResourceConfig(lo, 1024))
        cost_hi = model.estimate_program(compiled, ResourceConfig(hi, 1024))
        assert cost_hi <= cost_lo * (1 + 1e-9)

    @given(heap=heaps)
    @SETTINGS
    def test_cost_positive_and_finite(self, heap):
        compiled, model = fixed_plan()
        cost = model.estimate_program(compiled, ResourceConfig(heap, 1024))
        assert cost > 0
        assert math.isfinite(cost)


class TestIoModelMonotonicity:
    rows = st.integers(min_value=1, max_value=10**7)
    parallelism = st.floats(min_value=1.0, max_value=64.0)

    @given(r1=rows, r2=rows)
    @SETTINGS
    def test_read_time_monotone_in_size(self, r1, r2):
        lo, hi = sorted((r1, r2))
        params = DEFAULT_PARAMETERS
        small = io_model.hdfs_read_time(
            MatrixCharacteristics(lo, 100, lo * 100), params
        )
        big = io_model.hdfs_read_time(
            MatrixCharacteristics(hi, 100, hi * 100), params
        )
        assert small <= big

    @given(rows=rows, p1=parallelism, p2=parallelism)
    @SETTINGS
    def test_read_time_antitone_in_parallelism(self, rows, p1, p2):
        lo, hi = sorted((p1, p2))
        mc = MatrixCharacteristics(rows, 50, rows * 50)
        params = DEFAULT_PARAMETERS
        assert (
            io_model.hdfs_read_time(mc, params, parallelism=hi)
            <= io_model.hdfs_read_time(mc, params, parallelism=lo)
        )

    @given(size=st.floats(min_value=0, max_value=1e12),
           n1=st.integers(1, 64), n2=st.integers(1, 64))
    @SETTINGS
    def test_shuffle_time_antitone_in_nodes(self, size, n1, n2):
        lo, hi = sorted((n1, n2))
        params = DEFAULT_PARAMETERS
        assert (
            io_model.shuffle_time(size, params, hi)
            <= io_model.shuffle_time(size, params, lo)
        )


def _resource_signature(resource):
    """Configuration identity modulo process-global block ids."""
    return (
        resource.cp_heap_mb,
        resource.mr_heap_mb,
        tuple(sorted(resource.mr_heap_per_block.values())),
    )


class TestPlanCacheEquivalence:
    """The memoizing plan cache is a pure optimization: enabling it must
    never change the optimizer's chosen configuration or cost."""

    @given(
        rows=st.integers(min_value=1000, max_value=3 * 10**6),
        cols=st.integers(min_value=10, max_value=800),
    )
    @settings(deadline=None, derandomize=True, max_examples=8)
    def test_cache_on_off_same_choice(self, rows, cols):
        src = (
            "X = read($X)\n"
            "w = t(X) %*% (X %*% rand(rows=ncol(X), cols=1))\n"
            "print(sum(w))"
        )
        results = {}
        for enabled in (True, False):
            hdfs = SimulatedHDFS(sample_cap=16)
            hdfs.create_dense_input("data/X", rows, cols)
            compiled = compile_program(src, {"X": "data/X"},
                                       hdfs.input_meta())
            optimizer = ResourceOptimizer(
                paper_cluster(), m=4, enable_plan_cache=enabled
            )
            results[enabled] = optimizer.optimize(compiled)
        on, off = results[True], results[False]
        assert _resource_signature(on.resource) == _resource_signature(
            off.resource
        )
        assert on.cost == pytest.approx(off.cost, rel=1e-9)

    @given(budgets=st.lists(
        st.floats(min_value=512, max_value=50000), min_size=2, max_size=6,
    ))
    @SETTINGS
    def test_cp_bucket_monotone_in_budget(self, budgets):
        from repro.compiler.plan_cache import PlanCache

        compiled, _ = fixed_plan()
        block = next(
            b for b in compiled.last_level_blocks() if b.hop_roots
        )
        cache = PlanCache()
        ordered = sorted(budgets)
        buckets = [
            cache.cp_bucket(block, ResourceConfig(mb, 1024))
            for mb in ordered
        ]
        assert buckets == sorted(buckets)
