"""Unit tests for the core resource optimizer (Algorithm 1)."""

import pytest

from repro.cluster import paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import compile_program
from repro.optimizer import ResourceOptimizer
from repro.optimizer.pruning import prune_program_blocks

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
TINY = {
    "X": MatrixCharacteristics(10**4, 100, 10**6),
    "y": MatrixCharacteristics(10**4, 1, 10**4),
}
ARGS = {"X": "X", "y": "y", "B": "B"}

CG_STYLE = """
X = read($X)
y = read($y)
p = t(X) %*% y
i = 0
while (i < 5) {
  p = t(X) %*% (X %*% p) * 0.0001
  i = i + 1
}
write(p, $B, format="binary")
"""

DS_STYLE = """
X = read($X)
y = read($y)
beta = solve(t(X) %*% X, t(X) %*% y)
write(beta, $B, format="binary")
"""


@pytest.fixture
def cluster():
    return paper_cluster()


def optimize(cluster, source, meta=BIG, **kwargs):
    compiled = compile_program(source, ARGS, meta)
    optimizer = ResourceOptimizer(cluster, **kwargs)
    return optimizer.optimize(compiled), compiled


class TestOptimization:
    def test_iterative_prefers_large_cp(self, cluster):
        result, _ = optimize(cluster, CG_STYLE)
        # X is 8 GB: CG needs ~12 GB heap to hold it in the CP budget
        assert result.resource.cp_heap_mb >= 8 * 1024

    def test_compute_bound_prefers_small_cp(self, cluster):
        result, _ = optimize(cluster, DS_STYLE)
        assert result.resource.cp_heap_mb <= 2 * 1024

    def test_small_data_minimal_resources(self, cluster):
        result, _ = optimize(cluster, DS_STYLE, meta=TINY)
        assert result.resource.cp_heap_mb <= 2048
        assert result.resource.max_mr_heap_mb == cluster.min_heap_mb

    def test_cost_is_positive_and_finite(self, cluster):
        result, _ = optimize(cluster, CG_STYLE)
        assert 0 < result.cost < float("inf")

    def test_profile_covers_all_cp_points(self, cluster):
        result, _ = optimize(cluster, DS_STYLE)
        assert len(result.cp_profile) == result.stats.cp_points

    def test_chosen_cost_is_profile_minimum(self, cluster):
        result, _ = optimize(cluster, CG_STYLE)
        assert result.cost == pytest.approx(
            min(cost for _, cost in result.cp_profile)
        )

    def test_stats_counters_populated(self, cluster):
        result, _ = optimize(cluster, CG_STYLE)
        assert result.stats.block_compilations > 0
        assert result.stats.cost_invocations > 0
        assert result.stats.optimization_time > 0

    def test_fixed_cp_restricts_dimension(self, cluster):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        optimizer = ResourceOptimizer(cluster)
        result = optimizer.optimize(compiled, fixed_cp_mb=1024)
        assert result.resource.cp_heap_mb == 1024
        assert result.stats.cp_points == 1

    def test_grid_choice_changes_point_counts(self, cluster):
        _, compiled = optimize(cluster, DS_STYLE)
        equi = ResourceOptimizer(cluster, grid_cp="equi", grid_mr="equi",
                                 m=15).optimize(compiled)
        exp = ResourceOptimizer(cluster, grid_cp="exp", grid_mr="exp",
                                m=15).optimize(compiled)
        assert equi.stats.cp_points == 15
        assert exp.stats.cp_points < 15

    def test_time_budget_respected(self, cluster):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        optimizer = ResourceOptimizer(cluster, time_budget=0.0)
        result = optimizer.optimize(compiled)
        # budget exhausts after the first CP point but still returns a
        # valid configuration
        assert result.resource is not None
        assert len(result.cp_profile) == 1
        assert result.stats.budget_exhausted

    def test_unconstrained_run_reports_no_exhaustion(self, cluster):
        result, _ = optimize(cluster, DS_STYLE)
        assert not result.stats.budget_exhausted
        assert len(result.cp_profile) == result.stats.cp_points


class _NearTieCostModel:
    """Stub: the first CP point's program cost exceeds the second's by
    float noise only (1 part in 10^12)."""

    def __init__(self):
        self.invocations = 0
        self.memo_hits = 0
        self.program_calls = 0

    def estimate_block(self, compiled, block, resource, initial_state=None,
                       use_memo=False):
        self.invocations += 1
        return 1.0

    def estimate_program(self, compiled, resource):
        self.invocations += 1
        self.program_calls += 1
        return 1.0 + 1e-12 if self.program_calls == 1 else 1.0


class TestBugfixes:
    def test_near_tie_prefers_smaller_footprint(self, cluster):
        """A cost difference below float precision is a tie, and ties go
        to the minimal configuration (Definition 1) — exact equality
        used to send them to whichever point enumerated first."""
        compiled = compile_program(DS_STYLE, ARGS, BIG)
        optimizer = ResourceOptimizer(
            cluster, grid_cp="equi", grid_mr="equi", m=2,
            cost_model=_NearTieCostModel(), enable_plan_cache=False,
        )
        result = optimizer.optimize(compiled)
        grid_points = [rc for rc, _ in result.cp_profile]
        assert len(grid_points) == 2
        assert result.resource.cp_heap_mb == min(grid_points)
        assert result.cost == 1.0

    def test_program_left_compiled_under_returned_config(self, cluster):
        """_optimize used to leave plans compiled at the *last* grid
        point; consumers of ``compiled`` saw plans that disagree with
        the returned configuration."""
        from repro.compiler.pipeline import recompile_block_plan

        compiled = compile_program(DS_STYLE, ARGS, BIG)
        result = ResourceOptimizer(cluster).optimize(compiled)
        assert compiled.resource == result.resource
        blocks = list(compiled.last_level_blocks())
        left = {
            b.block_id: [str(i) for i in b.plan.instructions]
            for b in blocks
        }
        for block in blocks:
            recompile_block_plan(compiled, block, result.resource)
            fresh = [str(i) for i in block.plan.instructions]
            assert left[block.block_id] == fresh, block.block_id


class TestPruning:
    def test_cp_only_blocks_pruned(self, cluster):
        compiled = compile_program(
            DS_STYLE, ARGS, TINY,
        )
        from repro.cluster import ResourceConfig
        from repro.compiler.pipeline import compile_plans

        compile_plans(compiled, ResourceConfig(54613, 512))
        blocks = list(compiled.last_level_blocks())
        remaining, small, unknown = prune_program_blocks(blocks)
        assert not remaining
        assert len(small) == len(blocks)

    def test_unknown_blocks_pruned(self, cluster):
        source = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
Z = Y * 2
s = sum(Z)
print(s)
"""
        from repro.cluster import ResourceConfig
        from repro.compiler.pipeline import compile_plans

        compiled = compile_program(source, ARGS, BIG)
        compile_plans(compiled, ResourceConfig(512, 512))
        blocks = list(compiled.last_level_blocks())
        remaining, small, unknown = prune_program_blocks(blocks)
        assert unknown  # the all-unknown ctable block is pruned

    def test_pruning_reduces_optimization_work(self, cluster):
        small_result, _ = optimize(cluster, DS_STYLE, meta=TINY)
        large_result, _ = optimize(cluster, DS_STYLE, meta=BIG)
        assert (
            small_result.stats.remaining_blocks
            <= large_result.stats.remaining_blocks
        )
        assert (
            small_result.stats.cost_invocations
            < large_result.stats.cost_invocations
        )


class TestPerBlockConfigurations:
    def test_mr_entries_reference_real_blocks(self, cluster):
        result, compiled = optimize(cluster, CG_STYLE)
        block_ids = {b.block_id for b in compiled.last_level_blocks()}
        assert set(result.resource.mr_heap_per_block) <= block_ids

    def test_per_block_sizes_apply_during_execution(self, cluster):
        """Executing with the optimizer's per-block map must produce the
        same plans the optimizer costed (no block-id mismatch)."""
        from repro.runtime import Interpreter, SimulatedHDFS
        from repro.workloads import prepare_inputs, scenario

        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, "LinregDS", scenario("M"))
        from repro.compiler import compile_program
        from repro.scripts import load_script

        compiled = compile_program(
            load_script("LinregDS"), args, hdfs.input_meta()
        )
        result = ResourceOptimizer(cluster).optimize(compiled)
        interp = Interpreter(cluster, hdfs=hdfs, sample_cap=64)
        run = interp.run(compiled, result.resource)
        # estimate and actual stay within the usual tolerance, which
        # fails loudly if per-block entries were silently dropped
        assert run.total_time == pytest.approx(
            result.cost + run.breakdown.get("startup", 0.0), rel=0.4
        )
