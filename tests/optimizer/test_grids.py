"""Unit tests for grid point generators (Section 3.3.2)."""

import pytest

from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import build_and_analyze
from repro.optimizer.grids import (
    collect_memory_estimates_mb,
    equi_grid,
    exp_grid,
    generate_grid,
    hybrid_grid,
    memory_grid,
)


class TestEquiGrid:
    def test_point_count(self):
        assert len(equi_grid(512, 54613, m=15)) == 15

    def test_covers_extremes(self):
        points = equi_grid(512, 54613, m=15)
        assert points[0] == 512
        assert points[-1] == pytest.approx(54613)

    def test_equal_gaps(self):
        points = equi_grid(0, 100, m=11)
        gaps = {round(b - a, 9) for a, b in zip(points, points[1:])}
        assert gaps == {10.0}

    def test_degenerate_range(self):
        assert equi_grid(512, 512, m=15) == [512.0]

    def test_no_m_uses_min_gap(self):
        points = equi_grid(512, 2048, m=None)
        assert points == [512.0, 1024.0, 1536.0, 2048.0]


class TestExpGrid:
    def test_logarithmic_count(self):
        points = exp_grid(512, 54613)
        # gaps 512, 1024, 2048, ...: far fewer than a linear grid
        assert 5 <= len(points) <= 10

    def test_gaps_double(self):
        points = exp_grid(512, 10**6)
        gaps = [b - a for a, b in zip(points, points[1:-1])]
        for first, second in zip(gaps, gaps[1:]):
            assert second == pytest.approx(2 * first)

    def test_includes_extremes(self):
        points = exp_grid(512, 54613)
        assert points[0] == 512
        assert points[-1] == pytest.approx(54613)

    def test_fewer_points_than_equi_45(self):
        # the Figure 13(b) relation
        assert len(exp_grid(512, 54613)) < len(equi_grid(512, 54613, 45))


class TestMemoryGrid:
    def test_no_estimates_minimal(self):
        points = memory_grid(512, 54613, [])
        assert points == [512.0]

    def test_estimates_pick_neighbours(self):
        base = equi_grid(0, 100, m=11)
        points = memory_grid(0, 100, [34.0], m=11)
        assert 30.0 in points and 40.0 in points

    def test_small_estimates_clamp_to_min(self):
        points = memory_grid(512, 54613, [10.0, 20.0], m=15)
        assert points == [512.0]

    def test_large_estimates_clamp_to_max(self):
        points = memory_grid(512, 54613, [10**7], m=15)
        assert points[-1] == pytest.approx(54613)

    def test_adapts_to_data_size(self):
        """Different data -> different memory estimates -> different
        grids (the program-awareness property of Figure 13)."""
        source = "X = read($X)\nZ = t(X) %*% X"
        small = build_and_analyze(
            source, {"X": "X"}, {"X": MatrixCharacteristics(10**4, 100, 10**6)}
        )
        large = build_and_analyze(
            source, {"X": "X"}, {"X": MatrixCharacteristics(10**7, 100, 10**9)}
        )
        grid_small = memory_grid(
            512, 54613, collect_memory_estimates_mb_program(small)
        )
        grid_large = memory_grid(
            512, 54613, collect_memory_estimates_mb_program(large)
        )
        assert grid_small != grid_large


def collect_memory_estimates_mb_program(block_program):
    """Adapter: collect estimates from a bare BlockProgram."""

    class _Wrapper:
        def all_blocks(self):
            return block_program.all_blocks()

    return collect_memory_estimates_mb(_Wrapper())


class TestHybridGrid:
    def test_superset_of_exp(self):
        points = set(hybrid_grid(512, 54613, [5000.0]))
        assert set(exp_grid(512, 54613)) <= points

    def test_dispatch(self):
        for kind in ("equi", "exp", "mem", "hybrid"):
            points = generate_grid(kind, 512, 54613, [4000.0], m=15)
            assert points == sorted(points)
            assert len(points) >= 1

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            generate_grid("bogus", 512, 54613)

    def test_all_points_in_bounds(self):
        for kind in ("equi", "exp", "mem", "hybrid"):
            points = generate_grid(kind, 512, 54613, [100.0, 9999.0, 10**8])
            assert all(512 <= p <= 54613.001 for p in points)
