"""Unit tests for the task-parallel optimizer (Appendix C)."""

import pytest

from repro.cluster import paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import compile_program
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.optimizer.parallel import schedule_makespan

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
ARGS = {"X": "X", "y": "y", "B": "B"}

SOURCE = """
X = read($X)
y = read($y)
A = t(X) %*% X
b = t(X) %*% y
beta = solve(A, b)
r = y - X %*% beta
s = sum(r ^ 2)
print(s)
write(beta, $B, format="binary")
"""


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster()


class TestParallelOptimizer:
    def test_same_choice_as_serial(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        serial = ResourceOptimizer(cluster).optimize(compiled)
        compiled2 = compile_program(SOURCE, ARGS, BIG)
        parallel = ParallelResourceOptimizer(
            cluster, num_workers=3
        ).optimize(compiled2)
        assert parallel.resource.cp_heap_mb == serial.resource.cp_heap_mb
        assert parallel.cost == pytest.approx(serial.cost, rel=0.01)

    def test_task_records_collected(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = ParallelResourceOptimizer(
            cluster, num_workers=2
        ).optimize(compiled)
        kinds = {rec.kind for rec in result.task_records}
        assert "baseline" in kinds
        assert "agg" in kinds

    def test_single_worker_works(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = ParallelResourceOptimizer(
            cluster, num_workers=1
        ).optimize(compiled)
        assert result.resource is not None


class TestMakespanModel:
    def _records(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        return ParallelResourceOptimizer(
            cluster, num_workers=1
        ).optimize(compiled).task_records

    def test_more_workers_never_slower(self, cluster):
        records = self._records(cluster)
        times = [
            schedule_makespan(records, k) for k in (1, 2, 4, 8)
        ]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-9

    def test_pipelining_helps(self, cluster):
        records = self._records(cluster)
        with_pipe = schedule_makespan(records, 1, include_pipelining=True)
        without = schedule_makespan(records, 1, include_pipelining=False)
        assert with_pipe <= without
