"""Unit tests for the task-parallel optimizer (Appendix C)."""

import pytest

from repro.cluster import paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler.pipeline import compile_program
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.optimizer.parallel import schedule_makespan

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
ARGS = {"X": "X", "y": "y", "B": "B"}

SOURCE = """
X = read($X)
y = read($y)
A = t(X) %*% X
b = t(X) %*% y
beta = solve(A, b)
r = y - X %*% beta
s = sum(r ^ 2)
print(s)
write(beta, $B, format="binary")
"""


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster()


class TestParallelOptimizer:
    def test_same_choice_as_serial(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        serial = ResourceOptimizer(cluster).optimize(compiled)
        compiled2 = compile_program(SOURCE, ARGS, BIG)
        parallel = ParallelResourceOptimizer(
            cluster, num_workers=3
        ).optimize(compiled2)
        assert parallel.resource.cp_heap_mb == serial.resource.cp_heap_mb
        assert parallel.cost == pytest.approx(serial.cost, rel=0.01)

    def test_task_records_collected(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = ParallelResourceOptimizer(
            cluster, num_workers=2
        ).optimize(compiled)
        kinds = {rec.kind for rec in result.task_records}
        assert "baseline" in kinds
        assert "agg" in kinds

    def test_single_worker_works(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = ParallelResourceOptimizer(
            cluster, num_workers=1
        ).optimize(compiled)
        assert result.resource is not None


class _Boom(RuntimeError):
    pass


def _optimize_with_timeout(optimizer, compiled, timeout=60.0):
    """Run optimize on a thread so a regression to the task_done
    deadlock fails the test instead of hanging the suite."""
    import threading

    outcome = {}

    def run():
        try:
            outcome["result"] = optimizer.optimize(compiled)
        except BaseException as exc:  # noqa: BLE001 - reported below
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), "parallel optimizer hung"
    return outcome


class TestWorkerFailure:
    """Thread-backend failure semantics (the monkeypatched hooks —
    in-process CostModel and copy.deepcopy — are thread-path
    mechanics; the process backend ships pickled snapshots instead)."""

    def test_task_exception_propagates_without_hang(
        self, cluster, monkeypatch
    ):
        """A raising task used to skip tasks.task_done(), deadlocking
        tasks.join() forever; agg probes spun on memo entries that the
        dead producer would never publish."""
        import repro.optimizer.parallel as par

        class RaisingCostModel(par.CostModel):
            # estimate_program runs only on workers (agg tasks); the
            # master's baseline costing stays intact
            def estimate_program(self, compiled, resource):
                raise _Boom("injected worker failure")

        monkeypatch.setattr(par, "CostModel", RaisingCostModel)
        compiled = compile_program(SOURCE, ARGS, BIG)
        optimizer = ParallelResourceOptimizer(
            cluster, num_workers=2, backend="thread"
        )
        outcome = _optimize_with_timeout(optimizer, compiled)
        assert isinstance(outcome.get("error"), _Boom)

    def test_worker_setup_failure_propagates_without_hang(
        self, cluster, monkeypatch
    ):
        """A worker dying before its first task must drain its share of
        the queue, or tasks.join() never completes."""
        import repro.optimizer.parallel as par

        def boom(obj, memo=None):
            raise _Boom("injected deepcopy failure")

        compiled = compile_program(SOURCE, ARGS, BIG)
        optimizer = ParallelResourceOptimizer(
            cluster, num_workers=2, backend="thread"
        )
        monkeypatch.setattr(par.copy, "deepcopy", boom)
        outcome = _optimize_with_timeout(optimizer, compiled)
        assert isinstance(outcome.get("error"), _Boom)


class TestMakespanModel:
    def _records(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        return ParallelResourceOptimizer(
            cluster, num_workers=1
        ).optimize(compiled).task_records

    def test_more_workers_never_slower(self, cluster):
        records = self._records(cluster)
        times = [
            schedule_makespan(records, k) for k in (1, 2, 4, 8)
        ]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-9

    def test_pipelining_helps(self, cluster):
        records = self._records(cluster)
        with_pipe = schedule_makespan(records, 1, include_pipelining=True)
        without = schedule_makespan(records, 1, include_pipelining=False)
        assert with_pipe <= without


class TestAutoSerialPolicy:
    """The process backend falls back to serial below the enumeration
    work threshold (the auto backend policy)."""

    def _optimizer(self, cluster, threshold):
        return ParallelResourceOptimizer(
            cluster, num_workers=2, backend="process",
            auto_serial_points=threshold,
        )

    def test_small_grid_falls_back_to_serial(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = self._optimizer(cluster, 10**9).optimize(compiled)
        assert result.backend == "serial"
        assert result.num_workers == 1
        assert result.tasks_dispatched == 0
        assert result.resource is not None

    def test_fallback_matches_forced_process_choice(self, cluster):
        auto = self._optimizer(cluster, 10**9).optimize(
            compile_program(SOURCE, ARGS, BIG)
        )
        forced = self._optimizer(cluster, 0).optimize(
            compile_program(SOURCE, ARGS, BIG)
        )
        assert forced.backend == "process"
        assert auto.resource.cp_heap_mb == forced.resource.cp_heap_mb
        assert auto.cost == pytest.approx(forced.cost)

    def test_zero_threshold_disables_fallback(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = self._optimizer(cluster, 0).optimize(compiled)
        assert result.backend == "process"

    def test_thread_backend_never_falls_back(self, cluster):
        compiled = compile_program(SOURCE, ARGS, BIG)
        result = ParallelResourceOptimizer(
            cluster, num_workers=2, backend="thread",
            auto_serial_points=10**9,
        ).optimize(compiled)
        assert result.backend == "thread"

    def test_options_carry_the_threshold(self, cluster):
        from repro.optimizer import OptimizerOptions

        options = OptimizerOptions(
            parallel=True, num_workers=2, backend="process",
            auto_serial_points=123,
        )
        optimizer = ParallelResourceOptimizer(cluster, options=options)
        assert optimizer.auto_serial_points == 123
