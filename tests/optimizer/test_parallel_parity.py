"""Backend parity regression: process and thread enumeration choose
byte-identical configurations vs the serial optimizer.

Every backend walks the identical grid in the identical order and the
cost model is deterministic, so the chosen ``(resource, cost)`` must be
*equal*, not approximately equal — any drift means a backend reordered,
dropped, or double-costed a grid point.  Pruning statistics must agree
for the same reason.  Block ids are stamped per compilation, so
per-block MR vectors are compared by block *position*.
"""

import multiprocessing as mp

import pytest

from repro.cluster import paper_cluster
from repro.compiler.pipeline import compile_program
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.runtime import SimulatedHDFS
from repro.scripts import load_script
from repro.workloads import prepare_inputs, scenario

#: the five ML programs of the paper's Table 1
TABLE1_SCRIPTS = ["LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"]

#: base grid points: small enough to keep 5 scripts x 3 backends fast,
#: large enough that the enumeration exercises pruning and both budgets
M = 7


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster()


def _fresh_compiled(script):
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, script, scenario("S"), glm_family=2,
                          seed=7)
    return compile_program(load_script(script), args, hdfs.input_meta())


def _normalized(compiled, result):
    """(cp, mr, position-keyed MR vector, cost): comparable across
    independent compilations of the same script."""
    index_of = {
        b.block_id: i for i, b in enumerate(compiled.last_level_blocks())
    }
    vector = tuple(
        sorted(
            (index_of[block_id], ri)
            for block_id, ri in result.resource.mr_heap_per_block.items()
        )
    )
    return (
        result.resource.cp_heap_mb,
        result.resource.mr_heap_mb,
        vector,
        result.cost,
    )


def _stats_tuple(stats):
    return (
        stats.cp_points,
        stats.mr_points,
        stats.total_blocks,
        stats.pruned_small,
        stats.pruned_unknown,
        stats.remaining_blocks,
    )


def _run(script, cluster, backend, enable_plan_cache=True):
    compiled = _fresh_compiled(script)
    if backend == "serial":
        opt = ResourceOptimizer(
            cluster, m=M, enable_plan_cache=enable_plan_cache
        )
    else:
        opt = ParallelResourceOptimizer(
            cluster, m=M, num_workers=2, backend=backend,
            enable_plan_cache=enable_plan_cache,
        )
    result = opt.optimize(compiled)
    return compiled, result


class TestBackendParity:
    @pytest.mark.parametrize("script", TABLE1_SCRIPTS)
    def test_process_and_thread_match_serial(self, cluster, script):
        compiled_s, serial = _run(script, cluster, "serial")
        golden = _normalized(compiled_s, serial)
        golden_stats = _stats_tuple(serial.stats)
        golden_profile = tuple(serial.cp_profile)
        for backend in ("process", "thread"):
            compiled_b, result = _run(script, cluster, backend)
            assert _normalized(compiled_b, result) == golden, backend
            assert _stats_tuple(result.stats) == golden_stats, backend
            assert tuple(result.cp_profile) == golden_profile, backend

    @pytest.mark.parametrize("script", ["LinregCG", "GLM"])
    def test_parity_survives_plan_cache_ablation(self, cluster, script):
        """The plan cache is a pure memo: disabling it must not move
        the chosen configuration for any backend."""
        compiled_s, serial = _run(
            script, cluster, "serial", enable_plan_cache=False
        )
        golden = _normalized(compiled_s, serial)
        for backend in ("process", "thread"):
            compiled_b, result = _run(
                script, cluster, backend, enable_plan_cache=False
            )
            assert _normalized(compiled_b, result) == golden, backend
            assert result.stats.plan_cache_hits == 0, backend

    def test_process_backend_reports_itself(self, cluster):
        compiled, result = _run("LinregDS", cluster, "process")
        assert result.backend == "process"
        assert result.num_workers == 2
        assert result.tasks_dispatched > 0
        assert result.task_records


def _run_snapshot(script, cluster, snapshot, **kwargs):
    compiled = _fresh_compiled(script)
    opt = ParallelResourceOptimizer(
        cluster, m=M, num_workers=2, backend="process",
        snapshot=snapshot, **kwargs,
    )
    return compiled, opt.optimize(compiled)


_HAS_FORK = "fork" in mp.get_all_start_methods()


class TestSnapshotParity:
    """Fork (copy-on-write) vs pickle snapshot transport vs serial: the
    transport moves program state between processes and must never move
    the decision."""

    @pytest.mark.parametrize("script", TABLE1_SCRIPTS)
    def test_fork_and_pickle_match_serial(self, cluster, script):
        compiled_s, serial = _run(script, cluster, "serial")
        golden = _normalized(compiled_s, serial)
        golden_stats = _stats_tuple(serial.stats)
        golden_profile = tuple(serial.cp_profile)
        modes = ["pickle"] + (["fork"] if _HAS_FORK else [])
        for mode in modes:
            compiled_b, result = _run_snapshot(script, cluster, mode)
            assert _normalized(compiled_b, result) == golden, mode
            assert _stats_tuple(result.stats) == golden_stats, mode
            assert tuple(result.cp_profile) == golden_profile, mode

    @pytest.mark.skipif(not _HAS_FORK, reason="platform cannot fork")
    def test_fork_ships_zero_snapshot_bytes(self, cluster):
        _, result = _run_snapshot("LinregDS", cluster, "fork")
        assert result.start_method == "fork"
        assert result.snapshot_bytes == 0

    def test_pickle_reports_snapshot_size_and_start_method(self, cluster):
        _, result = _run_snapshot("LinregDS", cluster, "pickle")
        assert result.snapshot_bytes > 0
        assert result.start_method == mp.get_start_method()

    def test_phase_breakdown_reported(self, cluster):
        _, result = _run_snapshot("GLM", cluster, "auto")
        assert result.chunk_points >= 1
        assert result.enumerate_s > 0
        phases = (result.snapshot_s + result.dispatch_s
                  + result.enumerate_s + result.fold_s)
        assert phases <= result.stats.optimization_time

    @pytest.mark.parametrize("chunk_points", [1, 3, 100])
    def test_chunking_never_moves_the_decision(self, cluster, chunk_points):
        compiled_s, serial = _run("LinregCG", cluster, "serial")
        golden = _normalized(compiled_s, serial)
        compiled_b, result = _run_snapshot(
            "LinregCG", cluster, "auto", chunk_points=chunk_points,
        )
        assert _normalized(compiled_b, result) == golden
        assert result.chunk_points == chunk_points

    def test_vector_ablation_parity_through_process_backend(self, cluster):
        compiled_on, on = _run_snapshot("MLogreg", cluster, "auto")
        compiled_off, off = _run_snapshot(
            "MLogreg", cluster, "auto", enable_vector_costing=False,
        )
        assert _normalized(compiled_on, on) == _normalized(
            compiled_off, off
        )
        assert on.stats.mr_points_batched > 0
        assert off.stats.mr_points_batched == 0

    def test_unknown_snapshot_mode_rejected(self, cluster):
        with pytest.raises(ValueError, match="snapshot"):
            ParallelResourceOptimizer(cluster, snapshot="mmap")
