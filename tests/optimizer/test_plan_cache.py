"""Unit tests for the memoizing plan-recompilation cache.

Covers the exactness contract (a cache hit returns exactly the plan a
recompilation would regenerate), bucketing, invalidation on dynamic
recompilation, the cost-model memo, and the acceptance criterion:
cache on/off choose the identical configuration on LinregCG (m = 15)
while compilations and cost invocations drop at least 2x.
"""

import copy

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import DataType, MatrixCharacteristics
from repro.compiler.pipeline import compile_program, recompile_block_plan
from repro.compiler.plan_cache import PlanCache, block_thresholds
from repro.compiler.recompile import make_env_from_states, recompile_block
from repro.cost import CostModel
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
ARGS = {"X": "X", "y": "y", "B": "B"}

CG_STYLE = """
X = read($X)
y = read($y)
p = t(X) %*% y
i = 0
while (i < 5) {
  p = t(X) %*% (X %*% p) * 0.0001
  i = i + 1
}
write(p, $B, format="binary")
"""


@pytest.fixture
def cluster():
    return paper_cluster()


def _fingerprint(plan):
    return [str(ins) for ins in plan.instructions]


def _mr_block(compiled):
    """A block whose plan actually reacts to the budgets."""
    for block in compiled.last_level_blocks():
        if block.plan.num_mr_jobs:
            return block
    raise AssertionError("expected an MR block")


class TestBucketing:
    def test_thresholds_are_sorted_and_finite(self):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        cp_th, mr_th = block_thresholds(block)
        assert cp_th == tuple(sorted(cp_th))
        assert mr_th == tuple(sorted(mr_th))
        assert all(0 < v < float("inf") for v in cp_th + mr_th)

    def test_repeat_budget_hits_without_recompiling(self):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        cache = PlanCache()
        resource = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512)
        before = compiled.stats.block_compilations
        first = recompile_block_plan(compiled, block, resource, cache=cache)
        again = recompile_block_plan(compiled, block, resource, cache=cache)
        assert again is first
        assert cache.misses == 1
        assert cache.hits == 1
        assert compiled.stats.block_compilations == before + 1

    def test_bucket_boundary_recompiles(self):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        cache = PlanCache()
        small = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512)
        # X is ~8 GB: a 54 GB CP budget sits past its fits-thresholds
        large = ResourceConfig(cp_heap_mb=54613, mr_heap_mb=512)
        assert cache.key_for(block, small) != cache.key_for(block, large)
        recompile_block_plan(compiled, block, small, cache=cache)
        recompile_block_plan(compiled, block, large, cache=cache)
        assert cache.misses == 2
        assert cache.hits == 0

    def test_cached_plans_match_fresh_compilation(self):
        """The exactness contract, across a budget sweep."""
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        blocks = list(compiled.last_level_blocks())
        cache = PlanCache()
        for rc in (512.0, 2048.0, 8192.0, 16384.0, 54613.3):
            for ri in (512.0, 1024.0, 4096.0):
                resource = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=ri)
                for block in blocks:
                    cached = recompile_block_plan(
                        compiled, block, resource, cache=cache
                    )
                    fp = _fingerprint(cached)
                    fresh = recompile_block_plan(compiled, block, resource)
                    assert fp == _fingerprint(fresh), (rc, ri)

    def test_deepcopy_shares_thresholds_but_not_plans(self):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        cache = PlanCache()
        recompile_block_plan(
            compiled, block, ResourceConfig(512, 512), cache=cache
        )
        clone = copy.deepcopy(cache)
        assert clone.plans == {}
        assert clone.thresholds is cache.thresholds


class TestInvalidation:
    SOURCE = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
k = ncol(Y)
if (k > 0) {
  B = matrix(0, rows=ncol(X), cols=k)
  G = t(X) %*% Y + B
  s = sum(G)
  print(s)
}
"""
    META = {
        "X": MatrixCharacteristics(10**5, 100, 10**7),
        "y": MatrixCharacteristics(10**5, 1, 10**5),
    }

    def _unknown_block(self, compiled):
        for block in compiled.last_level_blocks():
            if block.requires_recompile:
                return block
        raise AssertionError("expected an unknown block")

    def test_dynamic_recompile_drops_cached_plans(self):
        compiled = compile_program(
            self.SOURCE, {"X": "X", "y": "y"}, self.META,
            ResourceConfig(8192, 1024),
        )
        block = self._unknown_block(compiled)
        cache = PlanCache()
        compiled.plan_cache = cache
        resource = ResourceConfig(8192, 1024)
        recompile_block_plan(compiled, block, resource, cache=cache)
        stale_key = cache.key_for(block, resource)
        assert cache.plans.get(stale_key) is not None
        env = make_env_from_states({
            "X": (DataType.MATRIX, self.META["X"], None),
            "y": (DataType.MATRIX, self.META["y"], None),
            "Y": (DataType.MATRIX,
                  MatrixCharacteristics(10**5, 3, 10**5), None),
            "k": (DataType.SCALAR, MatrixCharacteristics(0, 0, 0), 3),
        })
        recompile_block(compiled, block, resource, env)
        assert cache.invalidations == 1
        # thresholds were re-derived from the refreshed DAG, and no plan
        # generated before the size update survived
        assert all(key[0] != block.block_id or value.signature
                   == block.plan.signature
                   for key, value in cache.plans.items())
        assert block.block_id in cache.thresholds


class TestCostMemo:
    def test_memo_skips_invocations(self, cluster):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        resource = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512)
        recompile_block_plan(compiled, block, resource)
        model = CostModel(cluster)
        first = model.estimate_block(compiled, block, resource,
                                     use_memo=True)
        invocations = model.invocations
        second = model.estimate_block(compiled, block, resource,
                                      use_memo=True)
        assert second == first
        assert model.invocations == invocations
        assert model.memo_hits == 1

    def test_memo_key_projects_mr_heap(self, cluster):
        """Two MR heaps with equal task parallelism and thrash status
        cost identically, so they share one memo entry."""
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        model = CostModel(cluster)
        r1 = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512,
                            mr_heap_per_block={block.block_id: 2048.0})
        r2 = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512,
                            mr_heap_per_block={block.block_id: 2049.0})
        if model.mr_cost_signature(block.block_id, r1) != (
            model.mr_cost_signature(block.block_id, r2)
        ):
            pytest.skip("cluster parameters separate these heaps")
        recompile_block_plan(compiled, block, r1)
        first = model.estimate_block(compiled, block, r1, use_memo=True)
        second = model.estimate_block(compiled, block, r2, use_memo=True)
        assert second == first
        assert model.memo_hits == 1

    def test_memo_key_separates_budget_divisors(self, cluster):
        """Parfor bodies recompile under ``cp_budget / budget_divisor``,
        so the divisor is part of the memo key: the same plan signature
        under different divisors must not share a memo entry."""
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        resource = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512)
        recompile_block_plan(compiled, block, resource)
        model = CostModel(cluster)
        undivided = model._block_memo_key(block, resource)
        assert undivided is not None
        original = block.budget_divisor
        try:
            block.budget_divisor = original * 4
            assert model._block_memo_key(block, resource) != undivided
        finally:
            block.budget_divisor = original


class TestAcceptance:
    def _compiled_linregcg(self):
        from repro.runtime import SimulatedHDFS
        from repro.scripts import load_script
        from repro.workloads import prepare_inputs, scenario

        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, "LinregCG", scenario("M"))
        return compile_program(
            load_script("LinregCG"), args, hdfs.input_meta()
        )

    def test_linregcg_m15_reductions_with_identical_choice(self, cluster):
        compiled = self._compiled_linregcg()
        off = ResourceOptimizer(
            cluster, m=15, enable_plan_cache=False
        ).optimize(compiled)
        on = ResourceOptimizer(
            cluster, m=15, enable_plan_cache=True
        ).optimize(compiled)
        # identical outcome ...
        assert on.resource == off.resource
        assert on.cost == off.cost
        assert on.cp_profile == off.cp_profile
        # ... at a fraction of the work
        assert 2 * on.stats.block_compilations <= (
            off.stats.block_compilations
        )
        assert 2 * on.stats.cost_invocations <= off.stats.cost_invocations
        assert on.stats.plan_cache_hits > 0
        assert off.stats.plan_cache_hits == 0

    def test_serial_parallel_parity_with_cache(self, cluster):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        serial = ResourceOptimizer(cluster, m=15).optimize(compiled)
        parallel = ParallelResourceOptimizer(
            cluster, m=15, num_workers=3
        ).optimize(compiled)
        assert parallel.resource == serial.resource
        assert parallel.cost == serial.cost
        assert parallel.stats.plan_cache_hits > 0


class TestPickleAndMerge:
    """Process-backend contracts: pickling preserves the full cache
    state (the snapshot each worker receives), and merge() folds a
    worker's grown cache back into the master."""

    def _warm_cache(self):
        compiled = compile_program(CG_STYLE, ARGS, BIG)
        block = _mr_block(compiled)
        cache = PlanCache()
        for rc in (512.0, 2048.0, 54613.3):
            recompile_block_plan(
                compiled, block, ResourceConfig(rc, 512.0), cache=cache
            )
        return compiled, block, cache

    def test_pickle_roundtrip_preserves_state(self):
        import pickle

        compiled, block, cache = self._warm_cache()
        clone = pickle.loads(pickle.dumps(cache))
        assert set(clone.plans) == set(cache.plans)
        assert clone.thresholds == cache.thresholds
        assert (clone.hits, clone.misses) == (cache.hits, cache.misses)
        # the revived cache keeps serving hits at the warmed budgets
        before = clone.hits
        plan = recompile_block_plan(
            compiled, block, ResourceConfig(512.0, 512.0), cache=clone
        )
        assert clone.hits == before + 1
        assert _fingerprint(plan) == _fingerprint(
            cache.plans[cache.key_for(block, ResourceConfig(512.0, 512.0))]
        )

    def test_merge_accumulates_counters_and_adopts_plans(self):
        compiled, block, worker = self._warm_cache()
        master = PlanCache()
        # master knows one budget the worker also probed, plus nothing else
        recompile_block_plan(
            compiled, block, ResourceConfig(512.0, 512.0), cache=master
        )
        master_plans_before = dict(master.plans)
        hits = master.hits + worker.hits
        misses = master.misses + worker.misses
        master.merge(worker)
        assert master.hits == hits
        assert master.misses == misses
        # all worker keys present; keys the master already held keep
        # the master's plan object
        assert set(worker.plans) <= set(master.plans)
        for key, plan in master_plans_before.items():
            assert master.plans[key] is plan

    def test_merge_accumulates_evictions_and_invalidations(self):
        # regression: merge() used to drop the evictions counter, so a
        # bounded worker cache's evictions vanished from the master
        worker = PlanCache(max_plans=1)
        worker.store((1, 0, 0), object())
        worker.store((2, 0, 0), object())  # LRU bound: first key evicted
        worker.invalidate_block(2)
        assert (worker.evictions, worker.invalidations) == (1, 1)
        master = PlanCache()
        master.merge(worker)
        assert master.evictions == 1
        assert master.invalidations == 1
        master.merge(worker)
        assert master.evictions == 2

    def test_merge_is_usable_after_fold(self):
        compiled, block, worker = self._warm_cache()
        master = PlanCache()
        master.merge(worker)
        before = master.hits
        recompile_block_plan(
            compiled, block, ResourceConfig(2048.0, 512.0), cache=master
        )
        assert master.hits == before + 1


class TestSharedCacheConcurrency:
    """The serving layer shares one PlanCache across tenant threads."""

    def test_lru_bound_evicts_oldest(self):
        cache = PlanCache(max_plans=2)
        cache.store(("b", 0, 0), "p0")
        cache.store(("b", 0, 1), "p1")
        cache.store(("b", 0, 2), "p2")
        assert len(cache.plans) == 2
        assert ("b", 0, 0) not in cache.plans
        assert cache.evictions == 1

    def test_lookup_touches_lru_order(self):
        cache = PlanCache(max_plans=2)
        cache.store(("b", 0, 0), "p0")
        cache.store(("b", 0, 1), "p1")
        assert cache.lookup(("b", 0, 0)) == "p0"  # now most recent
        cache.store(("b", 0, 2), "p2")
        assert ("b", 0, 0) in cache.plans
        assert ("b", 0, 1) not in cache.plans

    def test_deepcopy_preserves_bound(self):
        cache = PlanCache(max_plans=7)
        clone = copy.deepcopy(cache)
        assert clone.max_plans == 7
        assert clone.plans == {}

    def test_concurrent_store_lookup_merge_not_torn(self):
        """Hammer one shared cache from many threads: every lookup
        returns either None or a value stored under that exact key, the
        bound holds, and counters stay consistent."""
        import threading

        shared = PlanCache(max_plans=64)
        errors = []
        barrier = threading.Barrier(4)

        def tenant(tid):
            try:
                barrier.wait()
                private = PlanCache()
                for i in range(300):
                    key = ("block", tid % 2, i % 40)
                    value = f"plan-{tid % 2}-{i % 40}"
                    private.store(key, value)
                    shared.store(key, value)
                    found = shared.lookup(key)
                    if found is not None and found != value:
                        errors.append((key, found))
                    shared.merge(private)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(tid,))
            for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(shared.plans) <= 64
        for key, value in shared.plans.items():
            assert value == f"plan-{key[1]}-{key[2]}"
        assert shared.hits + shared.misses >= 1200

    def test_concurrent_merge_into_master(self):
        """Parallel merges of disjoint worker caches lose nothing."""
        import threading

        master = PlanCache()
        workers = []
        for w in range(8):
            worker = PlanCache()
            for i in range(50):
                worker.store((f"b{w}", 0, i), f"plan-{w}-{i}")
            workers.append(worker)
        threads = [
            threading.Thread(target=master.merge, args=(worker,))
            for worker in workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(master.plans) == 8 * 50
        assert master.merge(master) is master  # self-merge is a no-op

    def test_pickle_roundtrip_restores_lock_and_bound(self):
        import pickle

        cache = PlanCache(max_plans=3)
        cache.store(("b", 0, 0), "p0")
        revived = pickle.loads(pickle.dumps(cache))
        assert revived.max_plans == 3
        revived.store(("b", 0, 1), "p1")  # lock works post-revive
        assert len(revived.plans) == 2
