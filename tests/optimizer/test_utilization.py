"""Tests for cluster-utilization-based adaptation (Section 6)."""

import pytest

from repro.cluster import ClusterLoad, ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.optimizer import ResourceOptimizer, UtilizationAwareAdapter
from repro.optimizer.utilization import degraded_parameters
from repro.runtime import Interpreter, SimulatedHDFS
from repro.scripts import load_script
from repro.workloads import prepare_inputs, scenario


@pytest.fixture
def cluster():
    return paper_cluster()


def run_linreg_ds(cluster, load, adapter=None, resource=None):
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, "LinregDS", scenario("M"))
    compiled = compile_program(load_script("LinregDS"), args,
                               hdfs.input_meta())
    if resource is None:
        resource = ResourceOptimizer(cluster).optimize(compiled).resource
    interp = Interpreter(cluster, hdfs=hdfs, sample_cap=64, adapter=adapter,
                         cluster_load=load)
    return interp.run(compiled, resource)


class TestDegradedParameters:
    def test_mr_rates_scaled(self):
        degraded = degraded_parameters(DEFAULT_PARAMETERS, 4.0)
        assert degraded.mr_task_flops == DEFAULT_PARAMETERS.mr_task_flops / 4
        assert degraded.mr_job_latency == DEFAULT_PARAMETERS.mr_job_latency * 4

    def test_cp_rates_untouched(self):
        degraded = degraded_parameters(DEFAULT_PARAMETERS, 4.0)
        assert degraded.cp_flops == DEFAULT_PARAMETERS.cp_flops
        assert degraded.hdfs_read_bw == DEFAULT_PARAMETERS.hdfs_read_bw

    def test_original_not_mutated(self):
        before = DEFAULT_PARAMETERS.mr_task_flops
        degraded_parameters(DEFAULT_PARAMETERS, 8.0)
        assert DEFAULT_PARAMETERS.mr_task_flops == before


class TestLoadedExecution:
    def test_load_slows_mr_jobs_only(self, cluster):
        idle = run_linreg_ds(cluster, ClusterLoad.idle())
        loaded = run_linreg_ds(cluster, ClusterLoad.constant(0.8))
        assert loaded.total_time > 3 * idle.total_time
        assert loaded.breakdown["mr_jobs"] > 3 * idle.breakdown["mr_jobs"]

    def test_cp_plans_unaffected_by_load(self, cluster):
        big = ResourceConfig(30000, 512)  # all-CP plan
        idle = run_linreg_ds(cluster, ClusterLoad.idle(), resource=big)
        loaded = run_linreg_ds(
            cluster, ClusterLoad.constant(0.8), resource=big
        )
        assert loaded.total_time == pytest.approx(idle.total_time, rel=0.01)


class TestUtilizationAdapter:
    def test_fallback_to_single_node_under_load(self, cluster):
        load = ClusterLoad.constant(0.85)
        adapter = UtilizationAwareAdapter(
            ResourceOptimizer(cluster), load, utilization_threshold=0.5
        )
        result = run_linreg_ds(cluster, load, adapter=adapter)
        blind = run_linreg_ds(cluster, load)
        assert result.migrations >= 1
        assert result.final_resource.cp_heap_mb > 2048
        assert result.total_time < blind.total_time

    def test_no_trigger_when_idle(self, cluster):
        load = ClusterLoad.idle()
        adapter = UtilizationAwareAdapter(
            ResourceOptimizer(cluster), load, utilization_threshold=0.5
        )
        result = run_linreg_ds(cluster, load, adapter=adapter)
        assert result.migrations == 0

    def test_retrigger_requires_delta(self, cluster):
        load = ClusterLoad.constant(0.85)
        adapter = UtilizationAwareAdapter(
            ResourceOptimizer(cluster), load, utilization_threshold=0.5,
            retrigger_delta=0.25,
        )

        class FakeInterp:
            clock = 0.0

        # first decision at 0.85 (above the threshold)
        assert adapter.should_trigger(FakeInterp(), None)
        adapter._last_decision_utilization = 0.85
        # stable load: no retrigger
        assert not adapter.should_trigger(FakeInterp(), None)
        # big shift: retrigger
        adapter.cluster_load = ClusterLoad.constant(0.2)
        assert adapter.should_trigger(FakeInterp(), None)
