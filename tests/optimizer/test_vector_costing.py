"""Vectorized grid costing: bitwise parity, memo-key soundness under
batching, and scalar fallback triggers.

`CostModel.estimate_grid` promises per-point costs *bit-identical* to
per-point `estimate_block` (the optimizer's selection rule compares
floats with strict ``<``, so "close" is not good enough) and memo keys
computed per point, never per batch.  The fallback triggers matter for
correctness: plans calling functions, granted resources, and
per-component accounting are structurally resource-dependent and must
decline the batch so the caller runs the scalar loop.
"""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceConfig, paper_cluster
from repro.cluster.resources import GrantedResource
from repro.compiler import compile_program
from repro.cost import CostModel
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.optimizer import ResourceOptimizer
from repro.optimizer.enumerate import OptimizerOptions
from repro.runtime import SimulatedHDFS

SETTINGS = settings(deadline=None, derandomize=True, max_examples=25)

_SRC = """
X = read($X)
s = sum(X)
Y = X * 2 + s
z = sum(t(Y) %*% Y)
print(z)
"""

#: compiled tight (512 MB CP) so the plan contains MR jobs — the
#: interesting case for MR-grid batching
_TIGHT_CP_MB = 512


def _compile_mr_plan():
    hdfs = SimulatedHDFS(sample_cap=64)
    hdfs.create_dense_input("data/X", 400000, 500)  # ~1.6 GB dense
    return compile_program(
        _SRC, {"X": "data/X"}, hdfs.input_meta(),
        ResourceConfig(_TIGHT_CP_MB, 1024),
    )


_FIXED = {}


def fixed_plan():
    """Module-cached compiled program + an MR-bearing block."""
    if "compiled" not in _FIXED:
        compiled = _compile_mr_plan()
        mr_blocks = [
            b for b in compiled.last_level_blocks()
            if b.plan is not None and b.plan.num_mr_jobs
        ]
        assert mr_blocks, "fixture plan lost its MR jobs"
        _FIXED["compiled"] = compiled
        _FIXED["block"] = mr_blocks[0]
    return _FIXED["compiled"], _FIXED["block"]


def _candidates(block_id, mr_heaps, cp_mb=_TIGHT_CP_MB):
    return [
        ResourceConfig(
            cp_heap_mb=cp_mb, mr_heap_mb=1024,
            mr_heap_per_block={block_id: ri},
        )
        for ri in mr_heaps
    ]


def _model():
    return CostModel(paper_cluster(), DEFAULT_PARAMETERS)


class TestGridEqualsScalar:
    def test_exact_equality_on_fixture_plan(self):
        compiled, block = fixed_plan()
        heaps = [512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0]
        resources = _candidates(block.block_id, heaps)
        grid = _model().estimate_grid(compiled, block, resources)
        assert grid is not None
        scalar_model = _model()
        scalar = [
            scalar_model.estimate_block(compiled, block, r)
            for r in resources
        ]
        assert grid == scalar  # bitwise, not approx

    def test_costs_actually_vary_across_points(self):
        """Guards the fixture: if every point cost the same, the parity
        assertions above would be vacuous."""
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, [512.0, 16384.0])
        grid = _model().estimate_grid(compiled, block, resources)
        assert grid[0] != grid[1]

    def test_returns_plain_floats(self):
        """numpy scalars must not leak into the optimizer's arithmetic
        (they pickle bigger and compare slower)."""
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, [1024.0, 4096.0])
        for cost in _model().estimate_grid(compiled, block, resources):
            assert type(cost) is float

    @given(
        heaps=st.lists(
            st.floats(min_value=512, max_value=28000),
            min_size=1, max_size=8,
        )
    )
    @SETTINGS
    def test_property_grid_equals_per_point_estimate_block(self, heaps):
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, heaps)
        grid = _model().estimate_grid(compiled, block, resources)
        scalar_model = _model()
        scalar = [
            scalar_model.estimate_block(compiled, block, r)
            for r in resources
        ]
        assert grid == scalar


class TestBatchedMemoKeys:
    """The satellite bugfix: memo keys stay per-point under batching.

    A batch-level key (one entry for the whole grid call) would hand
    point B point A's cost whenever their MR cost signatures differ —
    the crafted collision below would then read back the wrong float.
    """

    def test_crafted_collision_distinct_points_distinct_entries(self):
        compiled, block = fixed_plan()
        # 512 MB thrashes and gets high task parallelism; 16 GB neither:
        # different mr_cost_signature, same plan, same batch
        resources = _candidates(block.block_id, [512.0, 16384.0])
        model = _model()
        k1 = model._block_memo_key(block, resources[0])
        k2 = model._block_memo_key(block, resources[1])
        assert k1 != k2
        grid = model.estimate_grid(
            compiled, block, resources, use_memo=True
        )
        assert model._block_cost_memo[k1] == grid[0]
        assert model._block_cost_memo[k2] == grid[1]
        assert grid[0] != grid[1]

    def test_scalar_readback_after_batched_store(self):
        """estimate_block must answer from the batch-stored memo with
        the identical float (and count the hit)."""
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, [1024.0, 8192.0])
        model = _model()
        grid = model.estimate_grid(
            compiled, block, resources, use_memo=True
        )
        hits0 = model.memo_hits
        for r, expected in zip(resources, grid):
            assert model.estimate_block(
                compiled, block, r, use_memo=True
            ) == expected
        assert model.memo_hits == hits0 + len(resources)

    def test_duplicate_points_share_one_entry(self):
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, [2048.0, 2048.0])
        model = _model()
        grid = model.estimate_grid(
            compiled, block, resources, use_memo=True
        )
        assert grid[0] == grid[1]

    def test_second_batch_answers_from_memo(self):
        compiled, block = fixed_plan()
        resources = _candidates(block.block_id, [1024.0, 4096.0])
        model = _model()
        first = model.estimate_grid(
            compiled, block, resources, use_memo=True
        )
        inv0, hits0 = model.invocations, model.memo_hits
        second = model.estimate_grid(
            compiled, block, resources, use_memo=True
        )
        assert second == first
        assert model.invocations == inv0  # fully memoized: no new walk
        assert model.memo_hits == hits0 + len(resources)


class TestScalarFallback:
    def test_granted_resources_decline_the_batch(self):
        compiled, block = fixed_plan()
        ideal = ResourceConfig(
            cp_heap_mb=_TIGHT_CP_MB, mr_heap_mb=1024,
            mr_heap_per_block={block.block_id: 4096.0},
        )
        grant = GrantedResource.of(ideal, 0.5)
        plain = _candidates(block.block_id, [1024.0])
        assert _model().estimate_grid(
            compiled, block, plain + [grant]
        ) is None

    def test_component_accounting_declines_the_batch(self):
        compiled, block = fixed_plan()
        model = _model()
        model.component_totals = {}
        try:
            assert model.estimate_grid(
                compiled, block, _candidates(block.block_id, [1024.0])
            ) is None
        finally:
            model.component_totals = None

    def test_fcall_plans_decline_the_batch(self):
        compiled, block = fixed_plan()
        fake = types.SimpleNamespace(opcode="fcall")
        block.plan.instructions.append(fake)
        try:
            assert _model().estimate_grid(
                compiled, block, _candidates(block.block_id, [1024.0])
            ) is None
        finally:
            block.plan.instructions.remove(fake)


class TestOptimizerIntegration:
    def test_vector_on_off_choose_identically(self):
        cluster = paper_cluster()
        results = {}
        for vec in (True, False):
            compiled = _compile_mr_plan()
            result = ResourceOptimizer(
                cluster, m=7, enable_vector_costing=vec
            ).optimize(compiled)
            index_of = {
                b.block_id: i
                for i, b in enumerate(compiled.last_level_blocks())
            }
            vector = tuple(sorted(
                (index_of[bid], ri)
                for bid, ri in result.resource.mr_heap_per_block.items()
            ))
            results[vec] = (
                result.resource.cp_heap_mb, result.resource.mr_heap_mb,
                vector, result.cost, tuple(result.cp_profile),
            )
        assert results[True] == results[False]

    def test_batched_counter_reports_vector_work(self):
        cluster = paper_cluster()
        on = ResourceOptimizer(
            cluster, m=7, enable_vector_costing=True
        ).optimize(_compile_mr_plan())
        off = ResourceOptimizer(
            cluster, m=7, enable_vector_costing=False
        ).optimize(_compile_mr_plan())
        assert on.stats.mr_points_batched > 0
        assert off.stats.mr_points_batched == 0

    def test_cache_ablation_forces_scalar_path(self):
        """No plan cache -> no bucket grouping -> scalar loop, even with
        the switch on (the vector path needs the cache's buckets)."""
        cluster = paper_cluster()
        result = ResourceOptimizer(
            cluster, m=7, enable_vector_costing=True,
            enable_plan_cache=False,
        ).optimize(_compile_mr_plan())
        assert result.stats.mr_points_batched == 0

    def test_decision_signature_includes_the_switch(self):
        on = OptimizerOptions(enable_vector_costing=True)
        off = OptimizerOptions(enable_vector_costing=False)
        assert on.decision_signature() != off.decision_signature()

    def test_chunk_and_snapshot_knobs_excluded_from_signature(self):
        base = OptimizerOptions()
        tweaked = OptimizerOptions(chunk_points=3, snapshot="pickle")
        assert base.decision_signature() == tweaked.decision_signature()
