"""Unit tests for the CP buffer pool (LRU + eviction accounting)."""

import numpy as np
import pytest

from repro.cost.constants import DEFAULT_PARAMETERS
from repro.runtime.bufferpool import BufferPool
from repro.runtime.matrix import MatrixObject


class Charger:
    def __init__(self):
        self.total = 0.0
        self.by_category = {}

    def __call__(self, seconds, category):
        self.total += seconds
        self.by_category[category] = (
            self.by_category.get(category, 0.0) + seconds
        )


def make_obj(mb, dirty=True):
    """A matrix whose logical footprint is ~mb megabytes."""
    rows = int(mb * 1024 * 1024 / 8 / 10)
    obj = MatrixObject.generate(rows, 10, min_value=1.0, max_value=2.0,
                                sample_cap=4)
    obj.dirty = dirty
    return obj


@pytest.fixture
def charger():
    return Charger()


def make_pool(mb, charger):
    return BufferPool(mb * 1024 * 1024, DEFAULT_PARAMETERS, charger)


class TestResidency:
    def test_put_registers_in_memory(self, charger):
        pool = make_pool(100, charger)
        obj = make_obj(10)
        pool.put(obj)
        assert obj.in_memory and pool.contains(obj)

    def test_pin_resident_is_free(self, charger):
        pool = make_pool(100, charger)
        obj = make_obj(10)
        pool.put(obj)
        pool.pin(obj)
        assert charger.total == 0.0

    def test_eviction_on_overflow(self, charger):
        pool = make_pool(25, charger)
        a, b, c = make_obj(10), make_obj(10), make_obj(10)
        for obj in (a, b, c):
            pool.put(obj)
        assert pool.evictions >= 1
        assert not a.in_memory  # LRU victim

    def test_dirty_eviction_charges_write(self, charger):
        pool = make_pool(15, charger)
        pool.put(make_obj(10, dirty=True))
        pool.put(make_obj(10, dirty=True))
        assert charger.by_category.get("eviction", 0.0) > 0.0

    def test_clean_eviction_free(self, charger):
        pool = make_pool(15, charger)
        a = make_obj(10, dirty=False)
        a.dirty = False
        pool.put(a)  # put() marks dirty again
        a.dirty = False
        pool.put(make_obj(10))
        assert charger.by_category.get("eviction", 0.0) == 0.0

    def test_restore_from_local_copy(self, charger):
        pool = make_pool(100, charger)
        obj = make_obj(10)
        obj.in_memory = False
        obj.local_copy = True
        pool.pin(obj)
        assert obj.in_memory
        assert charger.by_category.get("restore", 0.0) > 0.0
        assert pool.restores == 1

    def test_restore_from_hdfs(self, charger):
        pool = make_pool(100, charger)
        obj = make_obj(10)
        obj.in_memory = False
        obj.hdfs_path = "data/x"
        pool.pin(obj)
        assert charger.by_category.get("read", 0.0) > 0.0

    def test_lru_order_updated_by_pin(self, charger):
        pool = make_pool(25, charger)
        a, b = make_obj(10), make_obj(10)
        pool.put(a)
        pool.put(b)
        pool.pin(a)  # a becomes most recently used
        pool.put(make_obj(10))
        assert a.in_memory and not b.in_memory


class TestCapacity:
    def test_oversized_object_not_retained(self, charger):
        pool = make_pool(5, charger)
        obj = make_obj(50)
        pool.put(obj)
        assert not pool.contains(obj)

    def test_set_capacity_shrink_evicts(self, charger):
        pool = make_pool(100, charger)
        objs = [make_obj(20) for _ in range(4)]
        for obj in objs:
            pool.put(obj)
        pool.set_capacity(30 * 1024 * 1024)
        assert pool.used_bytes <= 30 * 1024 * 1024

    def test_evict_all_clears_residency(self, charger):
        pool = make_pool(100, charger)
        obj = make_obj(10)
        pool.put(obj)
        pool.evict_all()
        assert not obj.in_memory
        assert pool.used_bytes == 0

    def test_release_all_no_charge(self, charger):
        pool = make_pool(100, charger)
        pool.put(make_obj(10))
        pool.release_all()
        assert charger.total == 0.0
