"""Tests for file-format handling (binary vs CSV/text IO costs)."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import FileFormat, MatrixCharacteristics
from repro.compiler import compile_program
from repro.cost import io_model
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import MatrixObject


class TestIOModelFormats:
    def test_csv_read_slower_than_binary(self):
        mc = MatrixCharacteristics(10**6, 100, 10**8)
        binary = io_model.hdfs_read_time(mc, DEFAULT_PARAMETERS,
                                         FileFormat.BINARY_BLOCK)
        csv = io_model.hdfs_read_time(mc, DEFAULT_PARAMETERS,
                                      FileFormat.CSV)
        assert csv > 2 * binary

    def test_serialized_size_format_dependent(self):
        mc = MatrixCharacteristics(1000, 100, 10**5)
        assert io_model.serialized_bytes(mc, FileFormat.CSV) > (
            io_model.serialized_bytes(mc, FileFormat.BINARY_BLOCK)
        )


class TestEndToEndFormats:
    def run_read(self, fmt_arg):
        hdfs = SimulatedHDFS(sample_cap=64)
        obj = MatrixObject.generate(10**6, 100, sample_cap=64)
        fmt = FileFormat.CSV if fmt_arg == "csv" else FileFormat.BINARY_BLOCK
        hdfs.put("X", obj.mc, obj.data, fmt)
        source = f'X = read($X, format="{fmt_arg}")\nprint(sum(X))'
        rc = ResourceConfig(4096, 512)
        compiled = compile_program(source, {"X": "X"}, hdfs.input_meta(), rc)
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64)
        return interp.run(compiled, rc)

    def test_csv_read_charged_more(self):
        binary = self.run_read("binary")
        csv = self.run_read("csv")
        assert csv.breakdown["read"] > 2 * binary.breakdown["read"]

    def test_csv_write(self):
        hdfs = SimulatedHDFS(sample_cap=32)
        obj = MatrixObject.from_sample(np.ones((8, 2)))
        hdfs.put("X", obj.mc, obj.data)
        rc = ResourceConfig(512, 512)
        compiled = compile_program(
            'X = read($X)\nwrite(X, "out.csv", format="csv")',
            {"X": "X"}, hdfs.input_meta(), rc,
        )
        result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32).run(
            compiled, rc
        )
        assert hdfs.exists("out.csv")
        assert hdfs.get("out.csv").fmt is FileFormat.CSV
        assert result.breakdown["write"] > 0
