"""Unit tests for the simulated HDFS."""

import numpy as np
import pytest

from repro.common import FileFormat, MatrixCharacteristics
from repro.errors import ExecutionError
from repro.runtime.hdfs import SimulatedHDFS
from repro.runtime.matrix import MatrixObject


@pytest.fixture
def hdfs():
    return SimulatedHDFS(sample_cap=32)


class TestFileOperations:
    def test_put_and_get(self, hdfs):
        mc = MatrixCharacteristics(100, 10, 1000)
        hdfs.put("a/b", mc, np.ones((32, 10)))
        f = hdfs.get("a/b")
        assert f.mc.rows == 100
        assert f.size_bytes > 0

    def test_get_missing_raises(self, hdfs):
        with pytest.raises(ExecutionError):
            hdfs.get("nope")

    def test_exists_and_delete(self, hdfs):
        hdfs.put("x", MatrixCharacteristics(1, 1, 1), np.ones((1, 1)))
        assert hdfs.exists("x")
        hdfs.delete("x")
        assert not hdfs.exists("x")

    def test_read_matrix_round_trip(self, hdfs):
        obj = MatrixObject.from_sample(np.eye(4))
        hdfs.write_matrix("m", obj)
        back = hdfs.read_matrix("m")
        assert np.allclose(back.data, np.eye(4))
        assert back.hdfs_path == "m"
        assert not back.dirty

    def test_read_metadata_only_file_raises(self, hdfs):
        hdfs.put("meta", MatrixCharacteristics(5, 5, 25))
        with pytest.raises(ExecutionError):
            hdfs.read_matrix("meta")

    def test_input_meta_copies(self, hdfs):
        hdfs.put("x", MatrixCharacteristics(7, 3, 21), np.ones((7, 3)))
        meta = hdfs.input_meta()
        meta["x"].rows = 999
        assert hdfs.get("x").mc.rows == 7


class TestGenerators:
    def test_dense_input(self, hdfs):
        hdfs.create_dense_input("X", 10**5, 20, seed=1)
        f = hdfs.get("X")
        assert f.mc.rows == 10**5
        assert f.data.shape == (32, 20)

    def test_sparse_input_nnz(self, hdfs):
        hdfs.create_dense_input("X", 10**5, 20, sparsity=0.01)
        f = hdfs.get("X")
        assert f.mc.nnz == 10**5 * 20 * 0.01

    def test_label_input_classes(self, hdfs):
        hdfs.create_label_input("y", 10**4, num_classes=3)
        values = set(np.unique(hdfs.get("y").data))
        assert values == {1.0, 2.0, 3.0}

    def test_regression_target(self, hdfs):
        hdfs.create_regression_target("y", 500)
        f = hdfs.get("y")
        assert f.mc.cols == 1

    def test_total_bytes_positive(self, hdfs):
        hdfs.create_dense_input("X", 1000, 10)
        assert hdfs.total_bytes() > 0

    def test_sparse_serialized_smaller_than_dense(self, hdfs):
        hdfs.create_dense_input("D", 10**5, 100, sparsity=1.0)
        hdfs.create_dense_input("S", 10**5, 100, sparsity=0.01)
        assert hdfs.get("S").size_bytes < hdfs.get("D").size_bytes
