"""Unit tests for the program interpreter."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig
from repro.errors import ExecutionError


class TestScalarExecution:
    def test_arithmetic_and_print(self, run_dml):
        result, _, _ = run_dml('a = 2\nb = a * 3 + 1\nprint("b=" + b)')
        assert result.prints == ["b=7"]

    def test_if_else_branching(self, run_dml):
        src = """
a = 5
if (a > 3) { msg = "big" } else { msg = "small" }
print(msg)
"""
        result, _, _ = run_dml(src)
        assert result.prints == ["big"]

    def test_while_loop_counts(self, run_dml):
        src = """
i = 0
while (i < 5) { i = i + 1 }
print(i)
"""
        result, _, _ = run_dml(src)
        assert result.prints == ["5"]

    def test_for_loop_accumulates(self, run_dml):
        src = """
s = 0
for (k in 1:4) { s = s + k }
print(s)
"""
        result, _, _ = run_dml(src)
        assert result.prints == ["10"]

    def test_for_loop_with_increment(self, run_dml):
        src = """
s = 0
for (k in seq(1, 9, 4)) { s = s + k }
print(s)
"""
        result, _, _ = run_dml(src)
        assert result.prints == ["15"]

    def test_stop_raises(self, run_dml):
        with pytest.raises(ExecutionError):
            run_dml('stop("failure")')

    def test_runaway_loop_guard(self, run_dml):
        with pytest.raises(ExecutionError):
            run_dml("i = 0\nwhile (i < 1) { i = i * 1 }")


class TestMatrixExecution:
    def test_linear_algebra_values(self, run_dml):
        src = """
X = read($X)
A = t(X) %*% X
s = sum(A)
print("s=" + s)
"""
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        result, _, _ = run_dml(src, inputs={"X": X})
        expected = (X.T @ X).sum()
        assert result.prints[0] == f"s={expected}"

    def test_solve_recovers_coefficients(self, run_dml):
        src = """
X = read($X)
y = read($y)
beta = solve(t(X) %*% X, t(X) %*% y)
print("b0=" + as.scalar(beta[1, 1]))
print("b1=" + as.scalar(beta[2, 1]))
"""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 2))
        y = X @ np.array([[2.0], [-1.0]])
        result, _, _ = run_dml(src, inputs={"X": X, "y": y})
        assert float(result.prints[0][3:]) == pytest.approx(2.0, abs=1e-8)
        assert float(result.prints[1][3:]) == pytest.approx(-1.0, abs=1e-8)

    def test_write_persists_output(self, run_dml):
        src = 'X = read($X)\nwrite(X, $out, format="binary")'
        result, compiled, hdfs = run_dml(
            src, inputs={"X": np.ones((4, 2))}, args={"out": "result/X"}
        )
        assert hdfs.exists("result/X")
        assert np.allclose(hdfs.get("result/X").data, 1.0)

    def test_function_call_executes(self, run_dml):
        src = """
normsq = function(Matrix[double] v) return (double n2) {
  n2 = sum(v ^ 2)
}
y = read($y)
print("n2=" + normsq(y))
"""
        y = np.array([[3.0], [4.0]])
        result, _, _ = run_dml(src, inputs={"y": y})
        assert float(result.prints[0][3:]) == pytest.approx(25.0)

    def test_multi_output_function(self, run_dml):
        src = """
stats = function(Matrix[double] v) return (double s, double m) {
  s = sum(v)
  m = max(v)
}
y = read($y)
[total, biggest] = stats(y)
print(total + "/" + biggest)
"""
        y = np.array([[1.0], [2.0], [5.0]])
        result, _, _ = run_dml(src, inputs={"y": y})
        assert result.prints == ["8.0/5.0"]

    def test_left_indexing_updates_region(self, run_dml):
        src = """
X = matrix(0, rows=3, cols=3)
X[1:2, ] = matrix(1, rows=2, cols=3)
print(sum(X))
"""
        result, _, _ = run_dml(src)
        assert result.prints == ["6.0"]

    def test_table_expansion_and_k(self, run_dml):
        src = """
y = read($y)
Y = table(seq(1, nrow(y)), y)
print("k=" + ncol(Y))
"""
        labels = np.array([[1.0], [3.0], [2.0], [3.0]])
        result, _, _ = run_dml(src, inputs={"y": labels})
        assert result.prints == ["k=3"]


class TestTimeAccounting:
    def test_clock_monotonically_positive(self, run_dml):
        result, _, _ = run_dml("a = 1")
        assert result.total_time > 0  # AM startup at minimum

    def test_startup_charged(self, run_dml):
        result, _, _ = run_dml("a = 1")
        assert result.breakdown.get("startup", 0) > 0

    def test_large_logical_read_charged(self, run_dml):
        src = "X = read($X)\ns = sum(X)\nprint(s)"
        result, _, _ = run_dml(src, inputs={"X": (10**6, 100)})
        # 800 MB at ~150 MB/s: seconds of read time
        assert result.breakdown.get("read", 0) > 1.0

    def test_mr_jobs_counted_and_charged(self, run_dml):
        src = "X = read($X)\nZ = t(X) %*% X\nprint(sum(Z))"
        result, _, _ = run_dml(
            src,
            inputs={"X": (10**7, 100)},
            resource=ResourceConfig(512, 1024),
        )
        assert result.mr_jobs >= 1
        assert result.breakdown.get("mr_jobs", 0) > 10  # job latency

    def test_export_charged_for_dirty_inputs(self, run_dml):
        # Z is computed in CP, then consumed by an MR job -> export
        src = """
X = read($X)
Y = read($Y)
Z = X * 2
W = Z * Y
print(sum(W))
"""
        result, _, _ = run_dml(
            src,
            inputs={"X": (10**6, 100), "Y": (10**6, 100)},
            resource=ResourceConfig(2560, 1024),
        )
        assert result.mr_jobs >= 1  # Z*Y exceeds the CP budget
        assert result.breakdown.get("export", 0) > 0

    def test_eviction_accounting_small_pool(self, run_dml):
        src = """
X = read($X)
A = X * 2
B = X + 1
C = A + B
print(sum(C))
"""
        result, _, _ = run_dml(
            src,
            inputs={"X": (3 * 10**5, 100)},  # ~240 MB each intermediate
            resource=ResourceConfig(700, 512),
        )
        assert result.evictions > 0


class TestDynamicRecompilation:
    def test_unknown_sizes_resolved_at_runtime(self, run_dml):
        src = """
y = read($y)
Y = table(seq(1, nrow(y)), y)
Z = Y + 0.0
print(ncol(Z))
"""
        labels = np.array([[2.0], [1.0], [2.0]])
        result, _, _ = run_dml(src, inputs={"y": labels})
        assert result.prints == ["2"]
        assert result.recompilations >= 1

    def test_recompilation_counted_per_execution(self, run_dml):
        src = """
y = read($y)
i = 0
while (i < 3) {
  Y = table(seq(1, nrow(y)), y)
  i = i + 1
}
print(i)
"""
        labels = np.array([[1.0], [2.0]])
        result, _, _ = run_dml(src, inputs={"y": labels})
        assert result.recompilations >= 3
