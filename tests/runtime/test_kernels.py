"""Unit tests for the semantic operator kernels."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.kernels import display, execute_kernel
from repro.runtime.matrix import MatrixObject


def mat(data, logical_rows=None):
    return MatrixObject.from_sample(
        np.asarray(data, dtype=float), logical_rows=logical_rows
    )


def run(opcode, *inputs, attrs=None, rng=None, sample_cap=2048):
    return execute_kernel(opcode, list(inputs), attrs, rng, sample_cap)


class TestElementwise:
    def test_matrix_addition(self):
        kind, data, mc = run("+", mat([[1, 2]]), mat([[3, 4]]))
        assert kind == "matrix"
        assert data.tolist() == [[4, 6]]

    def test_scalar_arithmetic(self):
        assert run("*", 3, 4)[1] == 12
        assert run("^", 2, 10)[1] == 1024
        assert run("%/%", 7, 2)[1] == 3

    def test_string_concat_display(self):
        assert run("+", "x=", True)[1] == "x=TRUE"

    def test_matrix_scalar_broadcast(self):
        _, data, _ = run("-", mat([[5, 6]]), 1)
        assert data.tolist() == [[4, 5]]

    def test_column_vector_broadcast(self):
        X = mat([[1, 2], [3, 4]])
        v = mat([[10], [20]])
        _, data, _ = run("*", X, v)
        assert data.tolist() == [[10, 20], [60, 80]]

    def test_division_by_zero_sanitized(self):
        _, data, _ = run("/", mat([[1.0]]), mat([[0.0]]))
        assert np.isfinite(data).all()

    def test_relational_produces_indicator(self):
        _, data, _ = run(">", mat([[-1, 2]]), 0)
        assert data.tolist() == [[0.0, 1.0]]

    def test_boolean_ops(self):
        _, data, _ = run("&", mat([[1, 0]]), mat([[1, 1]]))
        assert data.tolist() == [[1.0, 0.0]]
        assert run("|", False, True)[1] is True

    def test_unary_math(self):
        _, data, _ = run("sqrt", mat([[4.0, 9.0]]))
        assert data.tolist() == [[2.0, 3.0]]
        assert run("exp", 0.0)[1] == 1.0

    def test_not_on_matrix(self):
        _, data, _ = run("!", mat([[0.0, 2.0]]))
        assert data.tolist() == [[1.0, 0.0]]

    def test_logical_dims_broadcast(self):
        X = MatrixObject.generate(10**5, 4, sample_cap=16)
        v = MatrixObject.generate(10**5, 1, sample_cap=16)
        _, _, mc = run("+", X, v)
        assert (mc.rows, mc.cols) == (10**5, 4)


class TestAggregates:
    def test_sum_scales_to_logical(self):
        obj = mat(np.ones((10, 2)), logical_rows=1000)
        assert run("ua+", obj)[1] == pytest.approx(2000.0)

    def test_mean_not_scaled(self):
        obj = mat(np.full((10, 2), 5.0), logical_rows=1000)
        assert run("uamean", obj)[1] == pytest.approx(5.0)

    def test_min_max(self):
        obj = mat([[1, -2], [7, 0]])
        assert run("uamax", obj)[1] == 7
        assert run("uamin", obj)[1] == -2

    def test_rowsums_shape(self):
        obj = mat([[1, 2], [3, 4]])
        _, data, mc = run("uar+", obj)
        assert data.tolist() == [[3], [7]]
        assert (mc.rows, mc.cols) == (2, 1)

    def test_colsums_scaled(self):
        obj = mat(np.ones((10, 3)), logical_rows=100)
        _, data, mc = run("uac+", obj)
        assert data.tolist() == [[100.0, 100.0, 100.0]]
        assert (mc.rows, mc.cols) == (1, 3)

    def test_rowindexmax_one_based(self):
        obj = mat([[1, 9, 2], [8, 0, 1]])
        _, data, _ = run("uarimax", obj)
        assert data.ravel().tolist() == [2.0, 1.0]

    def test_trace(self):
        obj = mat(np.diag([1.0, 2.0, 3.0]))
        assert run("uatrace", obj)[1] == pytest.approx(6.0)

    def test_ternary_aggregate(self):
        a = mat([[1], [2]])
        b = mat([[3], [4]])
        c = mat([[5], [6]])
        assert run("tak+*", a, b, c)[1] == pytest.approx(1 * 3 * 5 + 2 * 4 * 6)


class TestMatMult:
    def test_basic_product(self):
        A = mat([[1, 2], [3, 4]])
        B = mat([[1], [1]])
        _, data, mc = run("ba+*", A, B)
        assert data.ravel().tolist() == [3.0, 7.0]
        assert (mc.rows, mc.cols) == (2, 1)

    def test_transpose_left_attr(self):
        X = mat([[1, 2], [3, 4]])
        v = mat([[1], [1]])
        _, data, _ = run("ba+*", X, v, attrs={"transpose_left": True})
        assert data.ravel().tolist() == [4.0, 6.0]

    def test_nonconformable_raises(self):
        with pytest.raises(ExecutionError):
            run("ba+*", mat([[1, 2]]), mat([[1, 2]]))

    def test_tsmm(self):
        X = mat([[1, 2], [3, 4]])
        _, data, mc = run("tsmm", X)
        expected = np.array([[10, 14], [14, 20]])
        assert np.allclose(data, expected)
        assert (mc.rows, mc.cols) == (2, 2)

    def test_mapmmchain_plain(self):
        X = mat([[1.0, 0.0], [0.0, 2.0]])
        v = mat([[3.0], [4.0]])
        _, data, _ = run("mapmmchain", X, v, attrs={"chain": "XtXv"})
        assert np.allclose(data, X.data.T @ (X.data @ v.data))

    def test_mapmmchain_weighted(self):
        X = mat([[1.0, 0.0], [0.0, 2.0]])
        v = mat([[3.0], [4.0]])
        w = mat([[0.5], [0.25]])
        _, data, _ = run("mapmmchain", X, v, w, attrs={"chain": "XtwXv"})
        assert np.allclose(data, X.data.T @ (w.data * (X.data @ v.data)))


class TestReorgIndexingData:
    def test_transpose(self):
        _, data, mc = run("r'", mat([[1, 2, 3]]))
        assert data.shape == (3, 1)
        assert (mc.rows, mc.cols) == (3, 1)

    def test_diag_vector_to_matrix(self):
        _, data, mc = run("rdiag", mat([[2], [3]]))
        assert np.allclose(data, np.diag([2.0, 3.0]))

    def test_diag_matrix_to_vector(self):
        _, data, mc = run("rdiag", mat([[1, 9], [8, 4]]))
        assert data.ravel().tolist() == [1.0, 4.0]
        assert mc.cols == 1

    def test_rix_columns(self):
        X = mat([[1, 2, 3], [4, 5, 6]])
        _, data, mc = run(
            "rix", X, 0, 0, 2, 3,
            attrs={"all_rows": True, "all_cols": False},
        )
        assert data.tolist() == [[2, 3], [5, 6]]
        assert (mc.rows, mc.cols) == (2, 2)

    def test_rix_single_row(self):
        X = mat([[1, 2], [3, 4]])
        _, data, _ = run(
            "rix", X, 2, 2, 0, 0,
            attrs={"all_rows": False, "all_cols": True},
        )
        assert data.tolist() == [[3, 4]]

    def test_lix_region_update(self):
        X = mat(np.zeros((3, 3)))
        Y = mat(np.ones((2, 3)))
        _, data, _ = run(
            "lix", X, Y, 1, 2, 0, 0,
            attrs={"all_rows": False, "all_cols": True},
        )
        assert data[:2].sum() == 6.0
        assert data[2].sum() == 0.0

    def test_rand_constant(self):
        _, data, mc = run(
            "rand", 5.0, 5.0, 4, 2,
            attrs={"params": ["min", "max", "rows", "cols"]},
        )
        assert data.shape == (4, 2)
        assert np.all(data == 5.0)

    def test_rand_capped_sample(self):
        _, data, mc = run(
            "rand", 0.0, 1.0, 10**6, 3,
            attrs={"params": ["min", "max", "rows", "cols"]},
            rng=np.random.default_rng(0), sample_cap=32,
        )
        assert data.shape == (32, 3)
        assert mc.rows == 10**6

    def test_seq_values(self):
        _, data, mc = run(
            "seq", 2, 10, 2, attrs={"params": ["from", "to", "incr"]}
        )
        assert data.ravel().tolist() == [2, 4, 6, 8, 10]

    def test_seq_zero_increment_raises(self):
        with pytest.raises(ExecutionError):
            run("seq", 1, 5, 0, attrs={"params": ["from", "to", "incr"]})

    def test_ctable_indicator(self):
        idx = mat([[1], [2], [3]])
        labels = mat([[2], [1], [2]])
        _, data, mc = run("ctable", idx, labels)
        assert data.tolist() == [[0, 1], [1, 0], [0, 1]]
        assert mc.cols == 2

    def test_ctable_logical_rows_from_input(self):
        idx = MatrixObject.generate(10**5, 1, min_value=1, max_value=1,
                                    sample_cap=8)
        labels = mat(np.ones((8, 1)))
        _, _, mc = run("ctable", idx, labels)
        assert mc.rows == 10**5

    def test_cbind(self):
        _, data, mc = run("cbind", mat([[1], [2]]), mat([[3], [4]]))
        assert data.tolist() == [[1, 3], [2, 4]]
        assert mc.cols == 2

    def test_rbind_caps_sample(self):
        a = mat(np.ones((30, 1)))
        b = mat(np.ones((30, 1)))
        _, data, mc = run("rbind", a, b, sample_cap=40)
        assert data.shape[0] == 40
        assert mc.rows == 60

    def test_solve_exact(self):
        A = mat([[2.0, 0.0], [0.0, 4.0]])
        b = mat([[2.0], [8.0]])
        _, data, _ = run("solve", A, b)
        assert np.allclose(data.ravel(), [1.0, 2.0])

    def test_solve_singular_falls_back(self):
        A = mat([[1.0, 1.0], [1.0, 1.0]])
        b = mat([[2.0], [2.0]])
        _, data, _ = run("solve", A, b)
        assert np.isfinite(data).all()


class TestCastsAndMeta:
    def test_cast_matrix_to_scalar(self):
        assert run("castdts", mat([[7.5]]))[1] == 7.5

    def test_cast_scalar_to_matrix(self):
        _, data, mc = run("castdtm", 3.0)
        assert data.tolist() == [[3.0]]

    def test_value_casts(self):
        assert run("castvti", 3.9)[1] == 3
        assert run("castvtd", 2)[1] == 2.0
        assert run("castvtb", 0)[1] is False

    def test_metadata_uses_logical(self):
        obj = MatrixObject.generate(10**6, 10, sample_cap=16)
        assert run("nrow", obj)[1] == 10**6
        assert run("ncol", obj)[1] == 10
        assert run("length", obj)[1] == 10**7

    def test_unknown_opcode_raises(self):
        with pytest.raises(ExecutionError):
            run("no_such_op", 1)

    def test_display_formats(self):
        assert display(True) == "TRUE"
        assert display(1.5) == "1.5"
        assert display("x") == "x"
