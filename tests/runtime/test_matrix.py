"""Unit tests for sample-backed matrix objects."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.matrix import (
    DEFAULT_SAMPLE_CAP,
    MatrixObject,
    measure_nnz,
    sample_rows,
)


class TestSampling:
    def test_small_matrix_unsampled(self):
        assert sample_rows(100) == 100

    def test_large_matrix_capped(self):
        assert sample_rows(10**7) == DEFAULT_SAMPLE_CAP

    def test_custom_cap(self):
        assert sample_rows(1000, cap=64) == 64

    def test_generate_logical_vs_physical(self):
        obj = MatrixObject.generate(10**6, 10, sample_cap=128)
        assert obj.mc.rows == 10**6
        assert obj.data.shape == (128, 10)

    def test_generate_constant_matrix(self):
        obj = MatrixObject.generate(100, 5, min_value=3.0, max_value=3.0)
        assert np.all(obj.data == 3.0)
        assert obj.mc.nnz == 500

    def test_generate_zero_matrix(self):
        obj = MatrixObject.generate(100, 5, min_value=0.0, max_value=0.0)
        assert obj.mc.nnz == 0

    def test_generate_sparse(self):
        rng = np.random.default_rng(1)
        obj = MatrixObject.generate(10**5, 100, sparsity=0.01, rng=rng,
                                    sample_cap=512)
        density = np.count_nonzero(obj.data) / obj.data.size
        assert 0.005 < density < 0.02
        assert obj.mc.nnz == 10**5

    def test_generate_labels_contains_all_classes(self):
        obj = MatrixObject.generate_labels(10**5, 7, sample_cap=256)
        assert set(np.unique(obj.data)) == set(float(k) for k in range(1, 8))

    def test_labels_logical_shape(self):
        obj = MatrixObject.generate_labels(10**5, 2, sample_cap=64)
        assert (obj.mc.rows, obj.mc.cols) == (10**5, 1)
        assert obj.data.shape == (64, 1)


class TestNnzMeasurement:
    def test_dense_sample(self):
        data = np.ones((10, 10))
        assert measure_nnz(data, 1000) == 1000

    def test_half_sparse_sample(self):
        data = np.zeros((10, 10))
        data[:5, :] = 1.0
        assert measure_nnz(data, 1000) == 500

    def test_empty_sample(self):
        assert measure_nnz(np.zeros((0, 1)), 0) == 0

    def test_refresh_nnz(self):
        obj = MatrixObject.from_sample(np.ones((4, 4)))
        obj.data[:, :2] = 0.0
        obj.refresh_nnz()
        assert obj.mc.nnz == 8


class TestObjectSemantics:
    def test_from_sample_defaults(self):
        obj = MatrixObject.from_sample(np.eye(3))
        assert (obj.mc.rows, obj.mc.cols, obj.mc.nnz) == (3, 3, 3)

    def test_from_sample_logical_override(self):
        obj = MatrixObject.from_sample(np.ones((8, 2)), logical_rows=800)
        assert obj.mc.rows == 800
        assert obj.mc.nnz == 1600

    def test_one_dimensional_sample_rejected(self):
        with pytest.raises(ExecutionError):
            MatrixObject(np.ones(5), None)

    def test_memory_size_uses_logical_dims(self):
        small = MatrixObject.generate(100, 10)
        big = MatrixObject.generate(10**6, 10, sample_cap=64)
        assert big.memory_size > small.memory_size

    def test_copy_is_independent(self):
        obj = MatrixObject.from_sample(np.ones((3, 3)))
        clone = obj.copy()
        clone.data[0, 0] = 99.0
        assert obj.data[0, 0] == 1.0

    def test_residency_flags_default(self):
        obj = MatrixObject.from_sample(np.ones((2, 2)))
        assert obj.in_memory and obj.dirty and not obj.local_copy
