"""Admission-policy units: FIFO heap-rule vs DRR best-fit packing."""

import pytest

from repro.cluster import ClusterConfig
from repro.cluster.yarn import ResourceManager
from repro.serving import (
    DemandPredictor,
    HeapRulePolicy,
    PackingPolicy,
    PendingRequest,
    PredictivePackingPolicy,
    make_policy,
)


def _rm(num_nodes=2, node_mb=4096, min_mb=256):
    cluster = ClusterConfig(
        num_nodes=num_nodes,
        node_memory_mb=node_mb,
        node_vcores=4,
        node_physical_cores=2,
        node_disks=2,
        min_allocation_mb=min_mb,
        max_allocation_mb=node_mb,
        num_reducers=2 * num_nodes,
    )
    return ResourceManager(cluster)


def _req(ticket, tenant, mb, order=None):
    return PendingRequest(
        ticket=ticket, tenant=tenant, container_mb=mb,
        order=order if order is not None else ticket,
    )


class TestHeapRulePolicy:
    def test_empty_queue_selects_nothing(self):
        assert HeapRulePolicy().select([], _rm()) is None

    def test_admits_fitting_head(self):
        policy = HeapRulePolicy()
        waiting = [_req(1, "a", 1024), _req(2, "b", 512)]
        assert policy.select(waiting, _rm()).ticket == 1

    def test_head_of_line_blocks_younger_even_if_they_fit(self):
        """Strict FIFO: a too-large head stalls the whole queue."""
        rm = _rm()
        big = rm.try_allocate(3584, tenant="hog")
        assert big is not None
        rm.try_allocate(3584, tenant="hog")
        # 1024 no longer fits anywhere; 512 would
        waiting = [_req(1, "a", 1024), _req(2, "b", 512)]
        assert HeapRulePolicy().select(waiting, rm) is None

    def test_selection_is_by_arrival_not_list_position(self):
        policy = HeapRulePolicy()
        waiting = [_req(9, "late", 512, order=9), _req(3, "early", 512, order=3)]
        assert policy.select(waiting, _rm()).ticket == 3


class TestPackingPolicy:
    def test_empty_queue_selects_nothing(self):
        assert PackingPolicy().select([], _rm()) is None

    def test_tightest_fit_wins_on_equal_deficits(self):
        """One node has 1024 free: the 1024 request packs exactly and
        beats the older 512 request."""
        rm = _rm(num_nodes=1, node_mb=4096)
        rm.try_allocate(3072, tenant="x")
        policy = PackingPolicy()
        waiting = [_req(1, "a", 512), _req(2, "b", 1024)]
        assert policy.select(waiting, rm).ticket == 2

    def test_unfitting_requests_are_skipped(self):
        rm = _rm(num_nodes=1, node_mb=4096)
        rm.try_allocate(3584, tenant="x")
        policy = PackingPolicy()
        waiting = [_req(1, "a", 1024), _req(2, "b", 512)]
        selected = policy.select(waiting, rm)
        assert selected.ticket == 2  # only the 512 fits

    def test_nothing_fits_selects_nothing(self):
        rm = _rm(num_nodes=1, node_mb=1024)
        rm.try_allocate(1024, tenant="x")
        policy = PackingPolicy()
        assert policy.select([_req(1, "a", 512)], rm) is None

    def test_drr_deficit_charges_admitted_tenant(self):
        policy = PackingPolicy(quantum_mb=256)
        request = _req(1, "a", 2048)
        policy.select([request], _rm())
        policy.admitted(request)
        assert policy.deficits["a"] == pytest.approx(256 - 2048)

    def test_charged_tenant_yields_to_waiting_tenant(self):
        """After tenant a is admitted (and charged), an equally-sized
        request from tenant b outranks a's next one."""
        rm = _rm()
        policy = PackingPolicy(quantum_mb=256)
        first = _req(1, "a", 1024)
        assert policy.select([first], rm).ticket == 1
        policy.admitted(first)
        waiting = [_req(2, "a", 1024, order=2), _req(3, "b", 1024, order=3)]
        assert policy.select(waiting, rm).tenant == "b"

    def test_waiting_accumulates_priority_over_rounds(self):
        """A tenant that keeps waiting accrues quantum every pass and
        eventually outranks fresh arrivals."""
        rm = _rm()
        starved = _rm(num_nodes=1, node_mb=4096)
        starved.try_allocate(4096, tenant="x")  # cluster full
        policy = PackingPolicy(quantum_mb=256)
        old = _req(1, "old", 1024, order=1)
        for _ in range(3):
            assert policy.select([old], starved) is None
        fresh = _req(2, "fresh", 1024, order=0)  # earlier order on purpose
        assert policy.select([old, fresh], rm).tenant == "old"


class TestDemandPredictor:
    def test_first_observation_seeds_the_average(self):
        predictor = DemandPredictor(alpha=0.5)
        predictor.observe("a", 1000, 10.0)
        assert predictor.predicted_demand_mb("a") == 1000.0
        assert predictor.predicted_runtime_s("a") == 10.0

    def test_ewma_update_math(self):
        predictor = DemandPredictor(alpha=0.5)
        predictor.observe("a", 1000, 10.0)
        predictor.observe("a", 2000, 20.0)
        assert predictor.predicted_demand_mb("a") == pytest.approx(1500.0)
        assert predictor.predicted_runtime_s("a") == pytest.approx(15.0)

    def test_unseen_tenant_falls_back_to_default(self):
        predictor = DemandPredictor()
        assert predictor.predicted_demand_mb("ghost", default=512) == 512
        assert predictor.predicted_runtime_s("ghost") == 0.0

    def test_snapshot_counts_tenants_and_observations(self):
        predictor = DemandPredictor()
        predictor.observe("a", 100, 1.0)
        predictor.observe("a", 100, 1.0)
        predictor.observe("b", 100, 1.0)
        assert predictor.snapshot() == {
            "tenants": 2, "observations": 3
        }

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DemandPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            DemandPredictor(alpha=1.5)

    def test_predictor_survives_pickling(self):
        import pickle

        predictor = DemandPredictor(alpha=0.4)
        predictor.observe("a", 1000, 5.0)
        clone = pickle.loads(pickle.dumps(predictor))
        assert clone.alpha == 0.4
        assert clone.predicted_demand_mb("a") == 1000.0
        clone.observe("a", 2000, 5.0)  # lock was rebuilt


class TestPredictivePackingPolicy:
    def test_shorter_predicted_runtime_breaks_deficit_ties(self):
        rm = _rm()
        policy = PredictivePackingPolicy(quantum_mb=1024)
        policy.observe("slow", 1024, 100.0)
        policy.observe("fast", 1024, 1.0)
        waiting = [
            _req(1, "slow", 1024, order=1),
            _req(2, "fast", 1024, order=2),
        ]
        assert policy.select(waiting, rm).tenant == "fast"

    def test_observe_feeds_the_predictor(self):
        policy = PredictivePackingPolicy()
        policy.observe("a", 2048, 3.0)
        assert policy.predictor.predicted_demand_mb("a") == 2048.0

    def test_forecast_larger_than_any_node_does_not_block(self):
        rm = _rm(num_nodes=1, node_mb=4096)
        policy = PredictivePackingPolicy()
        policy.observe("a", 100 * 4096, 1.0)  # absurd forecast
        request = _req(1, "a", 1024)
        assert policy.select([request], rm).ticket == 1

    def test_without_history_behaves_like_packing(self):
        rm = _rm()
        predictive = PredictivePackingPolicy(quantum_mb=512)
        packing = PackingPolicy(quantum_mb=512)
        waiting = [
            _req(1, "a", 2048, order=1),
            _req(2, "b", 512, order=2),
        ]
        assert (
            predictive.select(list(waiting), rm).ticket
            == packing.select(list(waiting), rm).ticket
        )

    def test_deficit_still_dominates_runtime(self):
        """A starved tenant outranks a fast-but-fresh one: fairness
        first, SJF only on ties."""
        full = _rm(num_nodes=1, node_mb=4096)
        full.try_allocate(4096, tenant="x")
        rm = _rm()
        policy = PredictivePackingPolicy(quantum_mb=256)
        policy.observe("old", 1024, 50.0)
        policy.observe("fresh", 1024, 0.5)
        old = _req(1, "old", 1024, order=1)
        for _ in range(3):
            assert policy.select([old], full) is None
        fresh = _req(2, "fresh", 1024, order=0)
        assert policy.select([old, fresh], rm).tenant == "old"


class TestMakePolicy:
    def test_registry_round_trip(self):
        assert make_policy("heap-rule").name == "heap-rule"
        assert make_policy("packing", quantum_mb=2048).quantum_mb == 2048
        predictive = make_policy("predictive", alpha=0.5)
        assert predictive.name == "predictive"
        assert predictive.predictor.alpha == 0.5

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo")
