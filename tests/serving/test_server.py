"""ElasticMLServer end-to-end: concurrency, determinism, isolation."""

import pytest

from repro import (
    ElasticMLSession,
    ElasticMLServer,
    FaultPlan,
    SessionConfig,
    Submission,
)
from repro.cluster import ResourceConfig, small_cluster
from repro.serving import PackingPolicy, default_serving_workers
from repro.workloads import prepare_inputs, scenario


def _canonical(outcome):
    """Identity of one simulated run, independent of block-id stamps
    (per-block MR heaps compare by position)."""
    result = outcome.result
    resource = outcome.resource
    return (
        result.total_time,
        result.mr_jobs,
        tuple(result.prints),
        resource.cp_heap_mb,
        resource.mr_heap_mb,
        tuple(sorted(resource.mr_heap_per_block.values())),
    )


@pytest.fixture
def server():
    srv = ElasticMLServer(sample_cap=64, trace=True, max_workers=4)
    yield srv
    srv.shutdown()


class TestConcurrentDeterminism:
    def test_concurrent_tenants_match_serial_session(self, server):
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        for i in range(8):
            server.submit(Submission(
                tenant=f"t{i % 3}", script="LinregDS", args=args, seed=0
            ))
        results = server.drain()
        assert all(r.ok for r in results)

        session = ElasticMLSession(sample_cap=64)
        serial_args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        serial = _canonical(session.run("LinregDS", serial_args))
        for r in results:
            assert _canonical(r.outcome) == serial

    def test_mixed_scripts_each_match_their_serial_run(self, server):
        ds_args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        cg_args = prepare_inputs(
            server.hdfs, "LinregCG", scenario("XS", cols=100)
        )
        for i in range(6):
            name, args = (
                ("LinregDS", ds_args) if i % 2 == 0
                else ("LinregCG", cg_args)
            )
            server.submit(Submission(tenant=f"t{i}", script=name, args=args))
        results = server.drain()
        assert all(r.ok for r in results)

        session = ElasticMLSession(sample_cap=64)
        prepare_inputs(session.hdfs, "LinregDS", scenario("XS", cols=100))
        prepare_inputs(session.hdfs, "LinregCG", scenario("XS", cols=100))
        serial_ds = _canonical(session.run("LinregDS", ds_args))
        serial_cg = _canonical(session.run("LinregCG", cg_args))
        for index, r in enumerate(results):
            expected = serial_ds if index % 2 == 0 else serial_cg
            assert _canonical(r.outcome) == expected

    def test_chaos_deterministic_across_concurrent_tenants(self, server):
        """Fault schedules are per-submission (plan seed), so running
        many chaos tenants concurrently reproduces the single-session
        fault accounting exactly."""
        args = prepare_inputs(
            server.hdfs, "LinregCG", scenario("XS", cols=100)
        )
        plan = FaultPlan.from_rate(7, 0.1)
        static = ResourceConfig(512, 512)
        for i in range(4):
            server.submit(Submission(
                tenant=f"t{i}", script="LinregCG", args=args,
                resource=static, adapt=False, chaos=plan,
            ))
        results = server.drain()
        assert all(r.ok for r in results)

        session = ElasticMLSession(sample_cap=64)
        prepare_inputs(session.hdfs, "LinregCG", scenario("XS", cols=100))
        serial = session.run(
            "LinregCG", args, resource=static, adapt=False,
            chaos=FaultPlan.from_rate(7, 0.1),
        )
        assert serial.chaos.total_injected > 0
        for r in results:
            chaos = r.outcome.chaos
            assert chaos.total_injected == serial.chaos.total_injected
            assert chaos.injected == serial.chaos.injected
            assert r.outcome.total_time == serial.total_time


class TestSharedCaches:
    def test_repeat_submissions_hit_all_shared_caches(self, server):
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        for i in range(6):
            server.submit(Submission(tenant="t", script="LinregDS",
                                     args=args))
            # serialize to make hit counts deterministic
            server.drain()
        stats = server.stats()
        assert stats["program_cache.hits"] == 5
        assert stats["optcache.hits"] == 5
        assert stats["optcache.misses"] == 1

    def test_opt_cache_disabled_via_config(self):
        server = ElasticMLServer(
            sample_cap=64,
            config=SessionConfig(opt_cache=False, enable_plan_cache=False),
        )
        try:
            assert server.opt_cache is None
            assert server.plan_cache is None
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            server.submit(Submission(tenant="t", script="LinregDS",
                                     args=args))
            assert server.drain()[0].ok
        finally:
            server.shutdown()


class TestLifecycleAndIsolation:
    def test_failed_submission_isolated(self, server):
        good_args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        bad = server.submit(Submission(
            tenant="bad", script="X = read($X)\nprint(sum(X))",
            args={"X": "no-such-file"},
        ))
        good = server.submit(Submission(
            tenant="good", script="LinregDS", args=good_args
        ))
        results = {r.ticket: r for r in server.drain()}
        assert results[bad].status == "failed"
        assert results[bad].error
        assert results[good].ok
        assert server.stats()["serving.failed"] == 1

    def test_oversized_container_is_rejected_not_failed(self, server):
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        huge = ResourceConfig(
            cp_heap_mb=10 * server.cluster.node_memory_mb,
            mr_heap_mb=512,
        )
        ticket = server.submit(Submission(
            tenant="t", script="LinregDS", args=args, resource=huge
        ))
        result = server.poll(ticket, timeout=60)
        assert result.status == "rejected"
        assert "never" in result.error

    def test_queue_limit_rejects_overflow(self):
        server = ElasticMLServer(sample_cap=64, queue_limit=1,
                                 max_workers=1)
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            tickets = [
                server.submit(Submission(tenant="t", script="LinregDS",
                                         args=args))
                for _ in range(6)
            ]
            results = {r.ticket: r for r in server.drain()}
            statuses = [results[t].status for t in tickets]
            assert "rejected" in statuses
            assert statuses.count("completed") >= 1
        finally:
            server.shutdown()

    def test_poll_unknown_ticket_returns_none(self, server):
        assert server.poll(999) is None

    def test_drain_preserves_submission_order(self, server):
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        tickets = [
            server.submit(Submission(tenant=f"t{i}", script="LinregDS",
                                     args=args))
            for i in range(5)
        ]
        results = server.drain()
        assert [r.ticket for r in results] == tickets

    def test_submit_after_shutdown_raises(self):
        server = ElasticMLServer(sample_cap=64)
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.submit(Submission(tenant="t", script="LinregDS"))

    def test_poll_timeout_expires_to_none(self, server):
        import time

        started = time.monotonic()
        assert server.poll(999, timeout=0.2) is None
        assert time.monotonic() - started >= 0.15

    def test_poll_timeout_on_inflight_submission_returns_none(self):
        server = ElasticMLServer(
            cluster=small_cluster(num_nodes=1, node_memory_mb=1024),
            sample_cap=64, max_workers=2,
        )
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=50)
            )
            # fill the only node so the submission parks in admission
            # and can never turn terminal during the poll
            hog = server.rm.try_allocate(1024, tenant="hog")
            assert hog is not None
            ticket = server.submit(Submission(
                tenant="parked", script="LinregDS", args=args,
                resource=ResourceConfig(300, 300), adapt=False,
            ))
            assert server.poll(ticket, timeout=0.3) is None
            server.rm.release(hog)
        finally:
            server.shutdown()

    def test_shutdown_cancels_submissions_parked_in_admission(self):
        import time

        server = ElasticMLServer(
            cluster=small_cluster(num_nodes=1, node_memory_mb=1024),
            sample_cap=64, max_workers=2, trace=True,
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        hog = server.rm.try_allocate(1024, tenant="hog")
        ticket = server.submit(Submission(
            tenant="parked", script="LinregDS", args=args,
            resource=ResourceConfig(300, 300), adapt=False,
        ))
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and ticket not in server._waiting:
            time.sleep(0.01)
        assert ticket in server._waiting, "submission never parked"
        # regression: this deadlocked while _acquire only watched
        # _granted — shutdown(wait=True) never returned
        server.shutdown(wait=True)
        result = server.poll(ticket)
        assert result is not None
        assert result.status == "cancelled"
        assert not result.ok
        assert "shut down" in result.error
        assert server.stats()["serving.cancelled"] == 1

    def test_drain_after_shutdown_no_wait_returns_all_terminal(self):
        import time

        server = ElasticMLServer(
            cluster=small_cluster(num_nodes=1, node_memory_mb=1024),
            sample_cap=64, max_workers=3,
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        hog = server.rm.try_allocate(1024, tenant="hog")
        tickets = [
            server.submit(Submission(
                tenant=f"t{i}", script="LinregDS", args=args,
                resource=ResourceConfig(300, 300), adapt=False,
            ))
            for i in range(2)
        ]
        deadline = time.monotonic() + 10
        while (
            time.monotonic() < deadline
            and len(server._waiting) < len(tickets)
        ):
            time.sleep(0.01)
        server.shutdown(wait=False)
        results = server.drain()
        assert len(results) == len(tickets)
        assert all(r.status == "cancelled" for r in results)

    def test_tenant_spans_and_counters_absorbed(self, server):
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        server.submit(Submission(tenant="alice", script="LinregDS",
                                 args=args))
        server.submit(Submission(tenant="bob", script="LinregDS",
                                 args=args))
        server.drain()
        roots = {span.name for span in server.tracer.roots}
        assert "tenant.alice" in roots
        assert "tenant.bob" in roots
        assert server.tracer.counter("serving.admitted") == 2
        assert server.tracer.counter("serving.completed") == 2


class TestSessionFacade:
    def test_submit_poll_drain_roundtrip(self):
        session = ElasticMLSession(sample_cap=64)
        try:
            args = prepare_inputs(
                session.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            ticket = session.submit(Submission(
                tenant="t", script="LinregDS", args=args
            ))
            result = session.poll(ticket, timeout=60)
            assert result.ok
            assert session.drain()[0].ticket == ticket
            serial = session.run("LinregDS", args)
            assert _canonical(result.outcome) == _canonical(serial)
        finally:
            session.shutdown()

    def test_facade_server_shares_session_state(self):
        session = ElasticMLSession(sample_cap=64,
                                   config=SessionConfig(grid_m=5))
        try:
            server = session._ensure_server()
            assert server.hdfs is session.hdfs
            assert server.cluster is session.cluster
            assert server.opt_cache is session.opt_cache
            assert server.config.grid_m == 5
        finally:
            session.shutdown()


class TestPackingPolicyEndToEnd:
    def test_serving_under_packing_policy_stays_deterministic(self):
        server = ElasticMLServer(
            sample_cap=64, policy=PackingPolicy(), max_workers=4
        )
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            for i in range(8):
                server.submit(Submission(
                    tenant=f"t{i % 4}", script="LinregDS", args=args
                ))
            results = server.drain()
            assert all(r.ok for r in results)
            assert len({_canonical(r.outcome) for r in results}) == 1
        finally:
            server.shutdown()


class TestCrossTenantCalibration:
    """The shared collector: every tenant feeds one sample sink, and a
    server-level fit updates the belief used for later submissions."""

    def _calibrating_server(self):
        from repro.cost.calibrate import drifted_parameters
        from repro.cost.constants import DEFAULT_PARAMETERS

        return ElasticMLServer(
            sample_cap=64,
            trace=True,
            max_workers=4,
            params=drifted_parameters(42),
            model_params=DEFAULT_PARAMETERS,
            config=SessionConfig(calibrate=True),
        )

    def test_tenants_feed_shared_collector(self):
        server = self._calibrating_server()
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            for i in range(4):
                server.submit(Submission(
                    tenant=f"t{i % 2}", script="LinregDS", args=args
                ))
            results = server.drain()
            assert all(r.ok for r in results)
            stats = server.stats()
            assert stats["calib.samples"] > 0
            assert stats["calib.fitted_params"] == 0  # nothing fitted yet
        finally:
            server.shutdown()

    def test_fit_applies_to_subsequent_optimizations(self):
        server = self._calibrating_server()
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=100)
            )
            for i in range(4):
                server.submit(Submission(
                    tenant=f"t{i}", script="LinregDS", args=args
                ))
            assert all(r.ok for r in server.drain())

            belief_before = server.model_params
            profile = server.fit_calibration(min_samples=1)
            assert profile.fitted
            assert server.model_params == profile.parameters()
            assert server.model_params != belief_before
            assert server.model_params.cp_flops == pytest.approx(
                server.params.cp_flops, rel=1e-6
            )
            assert server.stats()["calib.fitted_params"] == len(
                profile.fitted
            )
            # post-fit submissions run under the calibrated belief
            server.submit(Submission(
                tenant="after", script="LinregDS", args=args
            ))
            assert all(r.ok for r in server.drain())
        finally:
            server.shutdown()

    def test_fit_requires_collector(self):
        server = ElasticMLServer(sample_cap=64, max_workers=2)
        try:
            with pytest.raises(RuntimeError):
                server.fit_calibration()
        finally:
            server.shutdown()


class TestProgramCacheEvictions:
    def test_lru_eviction_is_counted_and_surfaced_in_stats(self):
        server = ElasticMLServer(
            sample_cap=64, max_workers=2, program_cache_entries=1
        )
        try:
            ds_args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=50)
            )
            cg_args = prepare_inputs(
                server.hdfs, "LinregCG", scenario("XS", cols=50)
            )
            for script, args in (
                ("LinregDS", ds_args), ("LinregCG", cg_args),
                ("LinregDS", ds_args),
            ):
                server.submit(Submission(
                    tenant="t", script=script, args=args
                ))
                server.drain()
            assert server.program_cache.evictions >= 2
            assert server.stats()["program_cache.evictions"] >= 2
            # every distinct program was a miss: the 1-entry cache
            # thrashed instead of serving the repeat
            assert server.program_cache.hits == 0
        finally:
            server.shutdown()

    def test_no_evictions_within_capacity(self):
        server = ElasticMLServer(sample_cap=64, max_workers=2)
        try:
            args = prepare_inputs(
                server.hdfs, "LinregDS", scenario("XS", cols=50)
            )
            for _ in range(2):
                server.submit(Submission(
                    tenant="t", script="LinregDS", args=args
                ))
                server.drain()
            assert server.program_cache.evictions == 0
            assert server.stats()["program_cache.evictions"] == 0
        finally:
            server.shutdown()


class TestServingWorkerClamp:
    def test_defaults_keep_the_historical_2_8_clamp(self):
        import os

        expected = max(2, min(8, os.cpu_count() or 1))
        assert default_serving_workers() == expected

    def test_explicit_arguments_override_everything(self):
        assert default_serving_workers(min_workers=3, max_workers=3) == 3

    def test_config_fields_override_env_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_MIN_WORKERS", "5")
        monkeypatch.setenv("REPRO_SERVING_MAX_WORKERS", "5")
        config = SessionConfig(
            serving_min_workers=1, serving_max_workers=1
        )
        assert default_serving_workers(config=config) == 1

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_MIN_WORKERS", "4")
        monkeypatch.setenv("REPRO_SERVING_MAX_WORKERS", "4")
        assert default_serving_workers() == 4

    def test_invalid_clamp_rejected(self):
        with pytest.raises(ValueError):
            default_serving_workers(min_workers=0)
        with pytest.raises(ValueError):
            default_serving_workers(min_workers=4, max_workers=2)

    def test_server_honors_config_clamp(self):
        server = ElasticMLServer(
            sample_cap=64,
            config=SessionConfig(
                serving_min_workers=1, serving_max_workers=1
            ),
        )
        try:
            assert server._executor._max_workers == 1
        finally:
            server.shutdown()
