"""Sharded multi-process serving: routing, partitioning, determinism.

The expensive invariant here is the standing one: a tenant's simulated
result is byte-identical whether it ran on a private session, the
single-process server, or any shard count of the multi-process front
end.  Process-spawning tests keep submission counts small (XS inputs)
so the suite stays fast on one CPU.
"""

import pytest

from repro import (
    ElasticMLSession,
    ElasticMLServer,
    SessionConfig,
    ShardedElasticMLServer,
    Submission,
    paper_cluster,
)
from repro.cluster import ResourceConfig
from repro.errors import ClusterError
from repro.serving import ConsistentHashRouter
from repro.serving.shard import plan_rebalance
from repro.workloads import prepare_inputs, scenario


def _canonical(outcome):
    result = outcome.result
    resource = outcome.resource
    return (
        result.total_time,
        result.mr_jobs,
        tuple(result.prints),
        resource.cp_heap_mb,
        resource.mr_heap_mb,
        tuple(sorted(resource.mr_heap_per_block.values())),
    )


class TestClusterPartition:
    def test_nodes_are_dealt_out_evenly_and_exhaustively(self):
        cluster = paper_cluster()
        parts = cluster.partition(4)
        assert [p.num_nodes for p in parts] == [2, 2, 1, 1]
        assert sum(p.num_nodes for p in parts) == cluster.num_nodes

    def test_partitions_preserve_node_size_and_allocation_bounds(self):
        cluster = paper_cluster()
        for part in cluster.partition(3):
            assert part.node_memory_mb == cluster.node_memory_mb
            assert part.min_allocation_mb == cluster.min_allocation_mb
            assert part.max_allocation_mb == cluster.max_allocation_mb

    def test_reducers_scale_proportionally_with_a_floor(self):
        parts = paper_cluster().partition(6)
        assert all(p.num_reducers >= 1 for p in parts)

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ClusterError):
            paper_cluster().partition(7)
        with pytest.raises(ClusterError):
            paper_cluster().partition(0)


class TestConsistentHashRouter:
    def test_routing_is_deterministic_across_instances(self):
        sub = Submission(tenant="alpha", script="LinregDS")
        a = ConsistentHashRouter(4).route(sub)
        b = ConsistentHashRouter(4).route(sub)
        assert a == b

    def test_tenant_affinity_keeps_a_tenant_on_one_shard(self):
        router = ConsistentHashRouter(4, affinity="tenant")
        shards = {
            router.route(Submission(
                tenant="alpha", script=name
            ))[1]
            for name in ("LinregDS", "LinregCG", "L2SVM")
        }
        assert len(shards) == 1

    def test_program_affinity_groups_tenants_of_one_program(self):
        router = ConsistentHashRouter(4, affinity="program")
        shards = {
            router.route(Submission(
                tenant=f"t{i}", script="LinregDS", args={"cols": 10}
            ))[1]
            for i in range(8)
        }
        assert len(shards) == 1
        other = router.route(
            Submission(tenant="t0", script="LinregCG", args={"cols": 10})
        )
        assert other[0] != router.key_for(
            Submission(tenant="t0", script="LinregDS", args={"cols": 10})
        )

    def test_keyspace_covers_every_shard(self):
        router = ConsistentHashRouter(4)
        used = {
            router.shard_for(f"tenant:tenant-{i}") for i in range(200)
        }
        assert used == {0, 1, 2, 3}

    def test_pin_overrides_the_ring_and_unpin_restores_it(self):
        router = ConsistentHashRouter(4)
        key = "tenant:alpha"
        natural = router.shard_for(key)
        target = (natural + 1) % 4
        router.pin(key, target)
        assert router.shard_for(key) == target
        assert router.pins == {key: target}
        router.unpin(key)
        assert router.shard_for(key) == natural

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter(0)
        with pytest.raises(ValueError):
            ConsistentHashRouter(2, affinity="random")
        with pytest.raises(ValueError):
            ConsistentHashRouter(2).pin("k", 5)


class TestPlanRebalance:
    def test_no_move_when_balanced(self):
        assert plan_rebalance(
            {0: 10.0, 1: 9.0}, {0: {"a": 10.0}, 1: {"b": 9.0}}
        ) is None

    def test_moves_hottest_key_from_most_to_least_loaded(self):
        move = plan_rebalance(
            {0: 30.0, 1: 5.0},
            {0: {"a": 10.0, "b": 20.0}, 1: {"c": 5.0}},
        )
        assert move == ("b", 0, 1)

    def test_single_shard_never_moves(self):
        assert plan_rebalance({0: 100.0}, {0: {"a": 100.0}}) is None

    def test_no_move_without_candidate_keys(self):
        assert plan_rebalance({0: 30.0, 1: 0.0}, {}) is None


class TestShardedDeterminism:
    def test_results_byte_identical_across_shard_counts_and_serial(self):
        session = ElasticMLSession(sample_cap=64)
        serial_args = {
            name: prepare_inputs(
                session.hdfs, name, scenario("XS", cols=50)
            )
            for name in ("LinregDS", "LinregCG")
        }
        references = {
            name: _canonical(session.run(name, serial_args[name]))
            for name in ("LinregDS", "LinregCG")
        }

        per_count = {}
        for shards in (1, 2):
            server = ShardedElasticMLServer(
                shards=shards, sample_cap=64, trace=True
            )
            args = {
                name: prepare_inputs(
                    server.hdfs, name, scenario("XS", cols=50)
                )
                for name in ("LinregDS", "LinregCG")
            }
            names = []
            for i in range(6):
                name = "LinregDS" if i % 2 == 0 else "LinregCG"
                server.submit(Submission(
                    tenant=f"tenant-{i % 3}", script=name,
                    args=args[name],
                ))
                names.append(name)
            results = server.drain()
            server.shutdown()
            assert [r.status for r in results] == ["completed"] * 6
            for name, r in zip(names, results):
                assert _canonical(r.outcome) == references[name]
            per_count[shards] = [_canonical(r.outcome) for r in results]
        assert per_count[1] == per_count[2]

    def test_predictive_policy_preserves_determinism(self):
        server = ShardedElasticMLServer(
            shards=2, sample_cap=64, policy="predictive",
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        for i in range(4):
            server.submit(Submission(
                tenant=f"t{i % 2}", script="LinregDS", args=args
            ))
        results = server.drain()
        server.shutdown()
        assert all(r.ok for r in results)
        assert len({_canonical(r.outcome) for r in results}) == 1

    def test_oversized_container_rejected_like_unsharded(self):
        server = ShardedElasticMLServer(shards=2, sample_cap=64)
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        ticket = server.submit(Submission(
            tenant="big", script="LinregDS", args=args,
            resource=ResourceConfig(10 ** 6, 512), adapt=False,
        ))
        result = server.poll(ticket, timeout=120)
        server.shutdown()
        assert result is not None and result.status == "rejected"
        assert "can never be placed" in result.error


class TestShardedLifecycle:
    def test_stats_aggregate_across_shards(self):
        server = ShardedElasticMLServer(shards=2, sample_cap=64,
                                        trace=True)
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        for i in range(6):
            server.submit(Submission(
                tenant=f"tenant-{i}", script="LinregDS", args=args
            ))
        server.drain()
        live = server.stats()
        server.shutdown()
        final = server.stats()
        for stats in (live, final):
            assert stats["serving.submitted"] == 6
            assert stats["serving.completed"] == 6
            assert stats["shard.count"] == 2
            assert len(stats["per_shard"]) == 2
            assert stats["predictor.observations"] == 6
        # per-shard tracers are absorbed into the parent at shutdown
        assert server.tracer.counter("serving.completed") == 6

    def test_queue_limit_rejects_at_the_front_end(self):
        server = ShardedElasticMLServer(
            shards=2, sample_cap=64, queue_limit=2
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        tickets = [
            server.submit(Submission(
                tenant=f"t{i}", script="LinregDS", args=args
            ))
            for i in range(6)
        ]
        results = server.drain()
        server.shutdown()
        rejected = [r for r in results if r.status == "rejected"]
        assert rejected, "queue bound never rejected"
        assert all(
            "queue limit" in r.error for r in rejected
        )
        assert len(tickets) == 6

    def test_submit_after_shutdown_raises(self):
        server = ShardedElasticMLServer(shards=2, sample_cap=64)
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.submit(Submission(tenant="t", script="LinregDS"))

    def test_shutdown_before_first_submit_is_clean(self):
        server = ShardedElasticMLServer(shards=2, sample_cap=64)
        server.shutdown()
        assert server.results() == []
        assert server.stats()["shard.count"] == 2

    def test_pickle_start_method_records_snapshot_bytes(self):
        server = ShardedElasticMLServer(
            shards=2, sample_cap=64, start_method="pickle"
        )
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        server.submit(Submission(
            tenant="t", script="LinregDS", args=args
        ))
        results = server.drain()
        server.shutdown()
        assert results[0].ok
        assert server.start_method == "pickle"
        assert server.snapshot_bytes > 0

    def test_light_detail_strips_heavy_fields_keeps_identity(self):
        server = ShardedElasticMLServer(shards=1, sample_cap=64)
        args = prepare_inputs(
            server.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        ticket = server.submit(Submission(
            tenant="t", script="LinregDS", args=args
        ))
        result = server.poll(ticket, timeout=120)
        server.shutdown()
        assert result.ok
        assert result.outcome.compiled is None
        assert result.outcome.trace is None
        assert result.outcome.result is not None
        assert result.outcome.resource is not None


class TestShardedFacade:
    def test_session_config_routes_facade_to_sharded_server(self):
        config = SessionConfig(serving_shards=2)
        session = ElasticMLSession(sample_cap=64, config=config)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=50)
        )
        reference = _canonical(session.run("LinregDS", args))
        ticket = session.submit(Submission(
            tenant="t", script="LinregDS", args=args
        ))
        result = session.poll(ticket, timeout=120)
        assert isinstance(session._server, ShardedElasticMLServer)
        session.shutdown()
        assert result is not None and result.ok
        assert _canonical(result.outcome) == reference
