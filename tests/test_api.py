"""Tests for the high-level ElasticMLSession API."""

import pytest

from repro import ElasticMLSession, ResourceConfig, small_cluster
from repro.workloads import prepare_inputs, scenario


@pytest.fixture
def session():
    return ElasticMLSession(sample_cap=64)


class TestSession:
    def test_run_registered_end_to_end(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run_registered("LinregDS", args)
        assert outcome.total_time > 0
        assert outcome.resource is not None
        assert outcome.optimizer_result is not None
        assert any("R2=" in p for p in outcome.prints)

    def test_run_with_explicit_resource_skips_optimizer(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run_registered(
            "LinregDS", args, resource=ResourceConfig(2048, 512)
        )
        assert outcome.optimizer_result is None
        assert outcome.resource.cp_heap_mb == 2048

    def test_run_inline_script(self, session):
        session.hdfs.create_dense_input("X", 1000, 10)
        outcome = session.run_script(
            "X = read($X)\nprint(sum(X))", {"X": "X"}
        )
        assert len(outcome.prints) == 1

    def test_estimate_cost_positive(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregCG", scenario("S", cols=100)
        )
        compiled = session.compile_registered("LinregCG", args)
        cost = session.estimate_cost(compiled, ResourceConfig(2048, 512))
        assert cost > 0

    def test_optimizer_defaults_configurable(self):
        session = ElasticMLSession(grid_cp="equi", grid_m=5, sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        compiled = session.compile_registered("LinregDS", args)
        result = session.optimize(compiled)
        assert result.stats.cp_points == 5

    def test_custom_cluster(self):
        session = ElasticMLSession(cluster=small_cluster(), sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run_registered("LinregDS", args)
        assert outcome.resource.cp_heap_mb <= session.cluster.max_heap_mb

    def test_adaptation_toggle(self, session):
        args = prepare_inputs(
            session.hdfs, "MLogreg", scenario("XS", cols=100)
        )
        outcome = session.run_registered("MLogreg", args, adapt=False)
        assert outcome.result.migrations == 0
