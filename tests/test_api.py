"""Tests for the high-level ElasticMLSession API."""

import dataclasses

import pytest

from repro import (
    ElasticMLSession,
    OptimizerOptions,
    ResourceConfig,
    SessionConfig,
    small_cluster,
)
from repro.workloads import prepare_inputs, scenario


@pytest.fixture
def session():
    return ElasticMLSession(sample_cap=64)


class TestSessionRun:
    def test_run_registered_name_end_to_end(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        assert outcome.total_time > 0
        assert outcome.resource is not None
        assert outcome.optimizer_result is not None
        assert outcome.estimated_cost == outcome.optimizer_result.cost
        assert any("R2=" in p for p in outcome.prints)

    def test_run_with_explicit_resource_skips_optimizer(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run(
            "LinregDS", args, resource=ResourceConfig(2048, 512)
        )
        assert outcome.optimizer_result is None
        assert outcome.estimated_cost is None
        assert outcome.resource.cp_heap_mb == 2048

    def test_run_optimize_false_uses_default_resource(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args, optimize=False)
        assert outcome.optimizer_result is None
        assert outcome.total_time > 0

    def test_run_inline_source(self, session):
        session.hdfs.create_dense_input("X", 1000, 10)
        outcome = session.run("X = read($X)\nprint(sum(X))", {"X": "X"})
        assert len(outcome.prints) == 1

    def test_run_keyword_only_parameters(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        with pytest.raises(TypeError):
            session.run("LinregDS", args, ResourceConfig(2048, 512))

    def test_adaptation_toggle(self, session):
        args = prepare_inputs(
            session.hdfs, "MLogreg", scenario("XS", cols=100)
        )
        outcome = session.run("MLogreg", args, adapt=False)
        assert outcome.migrations == 0

    def test_custom_cluster(self):
        session = ElasticMLSession(cluster=small_cluster(), sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        assert outcome.resource.cp_heap_mb <= session.cluster.max_heap_mb


class TestRunOutcome:
    def test_outcome_is_frozen(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        with pytest.raises(dataclasses.FrozenInstanceError):
            outcome.resource = ResourceConfig(1024, 512)

    def test_trace_none_without_tracing(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        assert outcome.trace is None


class TestRemovedEntryPoints:
    """run_script()/run_registered() (deprecated in 1.1) are gone."""

    def test_run_script_removed(self, session):
        assert not hasattr(session, "run_script")

    def test_run_registered_removed(self, session):
        assert not hasattr(session, "run_registered")

    def test_run_subsumes_both(self, session):
        session.hdfs.create_dense_input("X", 1000, 10)
        inline = session.run("X = read($X)\nprint(sum(X))", {"X": "X"})
        assert len(inline.prints) == 1
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        registered = session.run("LinregDS", args)
        assert registered.total_time > 0


class TestSessionConfig:
    def test_config_object_drives_knobs(self):
        config = SessionConfig(grid_cp="equi", grid_m=5, opt_workers=2,
                               opt_backend="thread")
        session = ElasticMLSession(config=config, sample_cap=64)
        assert session.grid_cp == "equi"
        assert session.grid_m == 5
        opts = session.optimizer_options
        assert opts.parallel and opts.backend == "thread"

    def test_legacy_kwargs_override_config(self):
        session = ElasticMLSession(
            config=SessionConfig(grid_m=5), grid_m=9, sample_cap=64
        )
        assert session.grid_m == 9
        assert session.config.grid_m == 9

    def test_knob_attribute_writes_update_config(self):
        session = ElasticMLSession(sample_cap=64)
        session.grid_m = 3
        session.opt_workers = 2
        assert session.config.grid_m == 3
        assert session.optimizer_options.m == 3
        assert session.optimizer_options.parallel

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SessionConfig().grid_m = 3

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(TypeError):
            ElasticMLSession(grid_q="nope")

    def test_opt_cache_disabled_via_config(self):
        session = ElasticMLSession(
            config=SessionConfig(opt_cache=False), sample_cap=64
        )
        assert session.opt_cache is None

    def test_opt_cache_entries_bound(self):
        session = ElasticMLSession(
            config=SessionConfig(opt_cache_entries=3), sample_cap=64
        )
        assert session.opt_cache.max_entries == 3


class TestOptimizerOptions:
    def test_session_defaults_configurable(self):
        session = ElasticMLSession(grid_cp="equi", grid_m=5, sample_cap=64)
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        compiled = session.compile_registered("LinregDS", args)
        result = session.optimize(compiled)
        assert result.stats.cp_points == 5

    def test_options_object_replaces_defaults(self, session):
        opts = OptimizerOptions(grid_cp="equi", grid_mr="equi", m=4)
        optimizer = session.make_optimizer(opts)
        assert optimizer.options == opts

    def test_keyword_overrides_patch_options(self, session):
        optimizer = session.make_optimizer(m=7)
        assert optimizer.options.m == 7
        assert optimizer.options.grid_cp == session.grid_cp

    def test_options_are_frozen(self):
        opts = OptimizerOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.m = 99


class TestEstimateCost:
    def test_estimate_cost_positive(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregCG", scenario("S", cols=100)
        )
        compiled = session.compile_registered("LinregCG", args)
        cost = session.estimate_cost(compiled, ResourceConfig(2048, 512))
        assert cost > 0

    def test_estimate_cost_has_no_side_effect(self, session):
        from repro.compiler.pipeline import capture_plans

        args = prepare_inputs(
            session.hdfs, "LinregCG", scenario("S", cols=100)
        )
        compiled = session.compile_registered(
            "LinregCG", args, ResourceConfig(4096, 1024)
        )
        resource_before = compiled.resource
        _, compilations_before, plans_before = capture_plans(compiled)
        session.estimate_cost(compiled, ResourceConfig(512, 512))
        _, compilations_after, plans_after = capture_plans(compiled)
        assert compiled.resource == resource_before
        assert compilations_after == compilations_before
        assert [id(p) for _, p in plans_after] == [
            id(p) for _, p in plans_before
        ]

    def test_estimate_cost_varies_with_resource(self, session):
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("S", cols=100)
        )
        compiled = session.compile_registered("LinregDS", args)
        small = session.estimate_cost(compiled, ResourceConfig(512, 512))
        large = session.estimate_cost(compiled, ResourceConfig(8192, 2048))
        assert small != large


class TestCalibration:
    """Session-level calibration loop: collect -> fit -> apply."""

    def _drifted_session(self):
        from repro.cost.calibrate import drifted_parameters
        from repro.cost.constants import DEFAULT_PARAMETERS

        return ElasticMLSession(
            params=drifted_parameters(42),
            model_params=DEFAULT_PARAMETERS,
            trace=True,
            sample_cap=64,
            config=SessionConfig(calibrate=True),
        )

    def test_belief_separates_from_truth(self):
        session = self._drifted_session()
        assert session.model_params != session.params
        # without overrides, belief == truth (the pre-calibration repo)
        plain = ElasticMLSession(sample_cap=64)
        assert plain.model_params == plain.params
        assert plain.calibration is None

    def test_traced_run_collects_samples(self):
        session = self._drifted_session()
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        outcome = session.run("LinregDS", args)
        assert session.calibration.total_samples > 0
        assert outcome.trace.counter("calib.samples") > 0

    def test_fit_and_apply_updates_belief(self):
        session = self._drifted_session()
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        session.run("LinregDS", args)
        belief_before = session.model_params
        profile = session.fit_calibration(min_samples=1, apply=True)
        assert profile.fitted
        assert session.model_params == profile.parameters()
        assert session.model_params != belief_before
        # the fit recovers the drifted truth for the heavily-sampled
        # compute component
        assert session.model_params.cp_flops == pytest.approx(
            session.params.cp_flops, rel=1e-6
        )
        assert session.tracer.counter("calib.fit_runs") == 1

    def test_fit_requires_calibrate(self):
        session = ElasticMLSession(sample_cap=64)
        with pytest.raises(RuntimeError):
            session.fit_calibration()

    def test_profile_roundtrips_through_config(self, tmp_path):
        session = self._drifted_session()
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        session.run("LinregDS", args)
        profile = session.fit_calibration(min_samples=1)
        path = str(tmp_path / "profile.json")
        profile.save(path)

        loaded = ElasticMLSession(
            sample_cap=64,
            config=SessionConfig(calibration_profile=path),
        )
        assert loaded.model_params == profile.parameters()
        assert loaded.calibration_profile == profile

    def test_mismatched_profile_rejected(self, tmp_path):
        session = self._drifted_session()
        args = prepare_inputs(
            session.hdfs, "LinregDS", scenario("XS", cols=100)
        )
        session.run("LinregDS", args)
        profile = session.fit_calibration(min_samples=1)
        path = str(tmp_path / "profile.json")
        profile.save(path)
        with pytest.raises(ValueError):
            ElasticMLSession(
                cluster=small_cluster(),
                config=SessionConfig(calibration_profile=path),
            )
