"""Unit tests for shared core types (repro.common)."""

import math

import pytest

from repro.common import (
    FileFormat,
    MatrixCharacteristics,
    SPARSE_THRESHOLD,
    binary_nnz_estimate,
    estimate_matrix_memory,
    estimate_serialized_size,
    is_sparse_representation,
    mult_nnz_estimate,
)


class TestRepresentationChoice:
    def test_dense_above_threshold(self):
        assert not is_sparse_representation(0.9, 100)

    def test_sparse_below_threshold(self):
        assert is_sparse_representation(0.01, 100)

    def test_vectors_always_dense(self):
        assert not is_sparse_representation(0.01, 1)

    def test_unknown_sparsity_dense(self):
        assert not is_sparse_representation(None, 100)

    def test_threshold_boundary(self):
        assert not is_sparse_representation(SPARSE_THRESHOLD, 100)
        assert is_sparse_representation(SPARSE_THRESHOLD - 1e-9, 100)


class TestMemoryEstimates:
    def test_dense_eight_bytes_per_cell(self):
        est = estimate_matrix_memory(1000, 1000, 1.0)
        assert est == pytest.approx(8 * 10**6, rel=0.01)

    def test_sparse_smaller(self):
        assert estimate_matrix_memory(10**5, 1000, 0.01) < (
            estimate_matrix_memory(10**5, 1000, 1.0)
        )

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            estimate_matrix_memory(-1, 10)

    def test_serialized_text_more_expensive(self):
        binary = estimate_serialized_size(1000, 100, 1.0,
                                          FileFormat.BINARY_BLOCK)
        csv = estimate_serialized_size(1000, 100, 1.0, FileFormat.CSV)
        assert csv > binary

    def test_serialized_unknown_infinite(self):
        assert estimate_serialized_size(None, 10) == math.inf


class TestMatrixCharacteristics:
    def test_dims_known_predicates(self):
        assert MatrixCharacteristics(3, 4, 12).fully_known
        assert not MatrixCharacteristics(3, None).dims_known
        assert MatrixCharacteristics(3, 4).dims_known
        assert not MatrixCharacteristics(3, 4).nnz_known

    def test_vector_predicates(self):
        assert MatrixCharacteristics(10, 1, 10).is_column_vector
        assert MatrixCharacteristics(1, 10, 10).is_vector
        assert MatrixCharacteristics(1, 1, 1).is_scalar_shaped
        assert not MatrixCharacteristics(3, 3, 9).is_vector

    def test_sparsity_clamped(self):
        mc = MatrixCharacteristics(2, 2, 100)  # inconsistent nnz
        assert mc.sparsity == 1.0

    def test_empty_matrix_sparsity(self):
        assert MatrixCharacteristics(0, 5, 0).sparsity == 1.0

    def test_same_dims(self):
        a = MatrixCharacteristics(3, 4, 5)
        b = MatrixCharacteristics(3, 4, 12)
        c = MatrixCharacteristics(4, 3, 5)
        assert a.same_dims(b)
        assert not a.same_dims(c)
        assert not a.same_dims(MatrixCharacteristics(None, 4))

    def test_copy_independent(self):
        a = MatrixCharacteristics(3, 4, 5)
        b = a.copy()
        b.rows = 99
        assert a.rows == 3

    def test_with_nnz_full(self):
        mc = MatrixCharacteristics(3, 4).with_nnz_full()
        assert mc.nnz == 12

    def test_str_rendering(self):
        assert str(MatrixCharacteristics(3, None, 5)) == "[3 x ?, nnz=5]"


class TestNnzEstimators:
    def test_mult_unknown_inputs(self):
        assert mult_nnz_estimate(
            MatrixCharacteristics(None, 3), MatrixCharacteristics(3, 2, 6)
        ) is None

    def test_mult_zero_common_dim(self):
        assert mult_nnz_estimate(
            MatrixCharacteristics(3, 0, 0), MatrixCharacteristics(0, 2, 0)
        ) == 0

    def test_mult_dense_inputs_dense_output(self):
        out = mult_nnz_estimate(
            MatrixCharacteristics(10, 10, 100),
            MatrixCharacteristics(10, 10, 100),
        )
        assert out == 100

    def test_binary_unknown_nnz_falls_back_to_cells(self):
        left = MatrixCharacteristics(10, 10, None)
        right = MatrixCharacteristics(10, 10, 5)
        assert binary_nnz_estimate(True, left, right) == 100
