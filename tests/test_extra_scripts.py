"""Tests specific to the extension scripts (KMeans, PCA)."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.optimizer import ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import MatrixObject
from repro.scripts import load_script
from repro.workloads import prepare_inputs, scenario


def run(name, hdfs, args, cp_mb=8192):
    rc = ResourceConfig(cp_mb, 1024)
    compiled = compile_program(load_script(name), args, hdfs.input_meta(), rc)
    interp = Interpreter(paper_cluster(), hdfs=hdfs,
                         sample_cap=hdfs.sample_cap)
    return interp.run(compiled, rc), hdfs


class TestKMeans:
    def make_clustered_input(self, hdfs, k=3, per_cluster=40, cols=10):
        """Well-separated Gaussian blobs so Lloyd's converges cleanly."""
        rng = np.random.default_rng(0)
        blobs = []
        for i in range(k):
            center = np.zeros(cols)
            center[i % cols] = 50.0 * (i + 1)
            blobs.append(center + rng.normal(size=(per_cluster, cols)))
        data = np.vstack(blobs)
        rng.shuffle(data)
        obj = MatrixObject.from_sample(data)
        hdfs.put("X", obj.mc, obj.data)

    def test_wcss_decreases(self):
        hdfs = SimulatedHDFS(sample_cap=256)
        self.make_clustered_input(hdfs)
        args = {"X": "X", "C": "C", "k": 3, "maxi": 5}
        result, _ = run("KMeans", hdfs, args)
        wcss = [
            float(p.split("WCSS=")[1])
            for p in result.prints
            if p.startswith("k-means iteration")
        ]
        assert len(wcss) >= 2
        assert wcss[-1] <= wcss[0]

    def test_centroids_written_with_shape(self):
        hdfs = SimulatedHDFS(sample_cap=256)
        self.make_clustered_input(hdfs, k=4)
        args = {"X": "X", "C": "C", "k": 4, "maxi": 3}
        _, hdfs = run("KMeans", hdfs, args)
        centroids = hdfs.get("C")
        assert (centroids.mc.rows, centroids.mc.cols) == (4, 10)

    def test_separated_blobs_recovered(self):
        hdfs = SimulatedHDFS(sample_cap=256)
        self.make_clustered_input(hdfs, k=2, per_cluster=60)
        args = {"X": "X", "C": "C", "k": 2, "maxi": 5}
        result, hdfs = run("KMeans", hdfs, args)
        centroids = hdfs.get("C").data
        # the two centroids are far apart (the blobs are 50+ apart)
        spread = np.linalg.norm(centroids[0] - centroids[1])
        assert spread > 20

    def test_scales_to_paper_scenarios(self):
        hdfs = SimulatedHDFS(sample_cap=128)
        args = prepare_inputs(hdfs, "KMeans", scenario("M", cols=100))
        compiled = compile_program(load_script("KMeans"), args,
                                   hdfs.input_meta())
        result = ResourceOptimizer(paper_cluster()).optimize(compiled)
        assert result.resource is not None
        assert result.cost < float("inf")


class TestPCA:
    def test_dominant_direction_recovered(self):
        rng = np.random.default_rng(1)
        # strong variance along the first coordinate
        data = rng.normal(size=(200, 8))
        data[:, 0] *= 20.0
        hdfs = SimulatedHDFS(sample_cap=256)
        obj = MatrixObject.from_sample(data)
        hdfs.put("X", obj.mc, obj.data)
        args = {"X": "X", "V": "V", "k": 2, "maxi": 30}
        result, hdfs = run("PCA", hdfs, args)
        components = hdfs.get("V").data
        # first component aligns with coordinate 0
        assert abs(components[0, 0]) > 0.95

    def test_variance_explained_bounds(self):
        hdfs = SimulatedHDFS(sample_cap=128)
        args = prepare_inputs(hdfs, "PCA", scenario("XS", cols=50))
        args["k"] = 5
        result, _ = run("PCA", hdfs, args)
        explained = [
            float(p.split("=")[1])
            for p in result.prints
            if p.startswith("VARIANCE_EXPLAINED")
        ][0]
        assert 0.0 < explained <= 1.0 + 1e-9

    def test_eigenvalues_nonincreasing(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(300, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        hdfs = SimulatedHDFS(sample_cap=512)
        obj = MatrixObject.from_sample(data)
        hdfs.put("X", obj.mc, obj.data)
        args = {"X": "X", "V": "V", "k": 3, "maxi": 50}
        result, _ = run("PCA", hdfs, args)
        eigenvalues = [
            float(p.split("eigenvalue=")[1])
            for p in result.prints
            if "component" in p
        ]
        assert eigenvalues == sorted(eigenvalues, reverse=True)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(200, 5)) * np.array([3, 2.5, 2, 1, 0.5])
        hdfs = SimulatedHDFS(sample_cap=256)
        obj = MatrixObject.from_sample(data)
        hdfs.put("X", obj.mc, obj.data)
        args = {"X": "X", "V": "V", "k": 3, "maxi": 60}
        _, hdfs = run("PCA", hdfs, args)
        V = hdfs.get("V").data
        gram = V.T @ V
        assert np.allclose(gram, np.eye(3), atol=0.05)
