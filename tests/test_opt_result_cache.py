"""Cross-run optimizer result cache + parallel-optimizer API wiring.

The cache keys an optimization decision by everything it depends on
(script, args, read-input metadata, cluster, cost parameters, grid
options), so a repeated tenant skips enumeration while any relevant
change re-runs it.
"""

import pytest

from repro.api import ElasticMLSession, OptimizerResultCache
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.workloads import prepare_inputs, scenario


def _session(**kwargs):
    kwargs.setdefault("sample_cap", 64)
    return ElasticMLSession(**kwargs)


def _linreg_args(session, cols=100):
    return prepare_inputs(
        session.hdfs, "LinregDS", scenario("XS", cols=cols)
    )


class TestCrossRunCache:
    def test_second_run_hits_and_skips_enumeration(self):
        session = _session(trace=True)
        args = _linreg_args(session)
        first = session.run("LinregDS", args)
        assert first.optimizer_result.from_cache is False
        assert session.tracer.counter("optcache.misses") == 1
        assert session.tracer.counter("optcache.stores") == 1
        second = session.run("LinregDS", args)
        assert second.optimizer_result.from_cache is True
        assert session.tracer.counter("optcache.hits") == 1
        # the trace of the cached run contains no enumeration at all
        assert session.tracer.counter("optimizer.runs") == 0
        assert second.resource == first.resource
        assert second.optimizer_result.cost == first.optimizer_result.cost

    def test_cached_run_executes_identically(self):
        session = _session()
        args = _linreg_args(session)
        first = session.run("LinregDS", args)
        second = session.run("LinregDS", args)
        assert second.total_time == pytest.approx(first.total_time)
        assert second.result.mr_jobs == first.result.mr_jobs

    def test_written_output_does_not_invalidate(self):
        """The first run writes $B to HDFS; the signature keys on the
        program's *reads*, so the output's appearance must not miss."""
        session = _session()
        args = _linreg_args(session)
        session.run("LinregDS", args)
        session.run("LinregDS", args)
        assert session.opt_cache.hits == 1

    def test_input_metadata_change_invalidates(self):
        session = _session()
        args = _linreg_args(session)
        session.run("LinregDS", args)
        # same paths, different shapes: the decision must be re-derived
        session.hdfs.create_dense_input(args["X"], 500, 100, seed=11)
        session.hdfs.create_dense_input(args["Y"], 500, 1, seed=12)
        session.run("LinregDS", args)
        assert session.opt_cache.hits == 0
        assert session.opt_cache.misses == 2

    def test_option_change_invalidates(self):
        session = _session()
        args = _linreg_args(session)
        session.run("LinregDS", args)
        session.grid_m = 5
        session.run("LinregDS", args)
        assert session.opt_cache.hits == 0
        assert session.opt_cache.misses == 2

    def test_parallel_knobs_do_not_invalidate(self):
        """Backends choose identically, so parallelism is excluded
        from the decision signature."""
        session = _session()
        args = _linreg_args(session)
        session.run("LinregDS", args)
        session.opt_workers = 2
        session.opt_backend = "thread"
        outcome = session.run("LinregDS", args)
        assert outcome.optimizer_result.from_cache is True

    def test_disabled_cache_always_enumerates(self):
        session = _session(opt_cache=None)
        args = _linreg_args(session)
        first = session.run("LinregDS", args)
        second = session.run("LinregDS", args)
        assert first.optimizer_result.from_cache is False
        assert second.optimizer_result.from_cache is False

    def test_static_resource_bypasses_cache(self):
        from repro.cluster import ResourceConfig

        session = _session()
        args = _linreg_args(session)
        session.run("LinregDS", args, resource=ResourceConfig(2048, 1024))
        assert len(session.opt_cache) == 0

    def test_lru_bound_evicts_oldest(self):
        session = _session(opt_cache=OptimizerResultCache(max_entries=1))
        args = _linreg_args(session)
        session.run("LinregDS", args)
        cg_args = prepare_inputs(
            session.hdfs, "LinregCG", scenario("XS", cols=100)
        )
        session.run("LinregCG", cg_args)
        assert len(session.opt_cache) == 1
        session.run("LinregDS", args)  # evicted: enumerates again
        assert session.opt_cache.hits == 0


class TestMakeOptimizerDispatch:
    def test_default_is_serial(self):
        session = _session()
        opt = session.make_optimizer()
        assert type(opt) is ResourceOptimizer

    def test_opt_workers_selects_parallel(self):
        session = _session(opt_workers=3, opt_backend="thread")
        opt = session.make_optimizer()
        assert type(opt) is ParallelResourceOptimizer
        assert opt.num_workers == 3
        assert opt.backend == "thread"

    def test_num_workers_override_implies_parallel(self):
        session = _session()
        opt = session.make_optimizer(num_workers=2)
        assert type(opt) is ParallelResourceOptimizer
        assert opt.num_workers == 2

    def test_parallel_false_override_wins(self):
        session = _session(opt_workers=4)
        opt = session.make_optimizer(parallel=False)
        assert type(opt) is ResourceOptimizer

    def test_parallel_session_run_populates_counters(self):
        session = _session(opt_workers=2, opt_backend="process",
                           auto_serial_points=0, trace=True)
        args = _linreg_args(session)
        outcome = session.run("LinregDS", args)
        assert outcome.optimizer_result.backend == "process"
        assert session.tracer.counter("optpar.tasks") > 0
        assert session.tracer.gauges["optpar.workers"] == 2

    def test_small_grid_auto_falls_back_to_serial(self):
        """Session default auto-serial policy: the XS LinregDS grid is
        far below the threshold, so the process backend never spawns."""
        session = _session(opt_workers=2, opt_backend="process",
                           trace=True)
        args = _linreg_args(session)
        outcome = session.run("LinregDS", args)
        assert outcome.optimizer_result.backend == "serial"
        assert outcome.optimizer_result.tasks_dispatched == 0
        assert session.tracer.counter("optpar.auto_serial") == 1
        assert session.tracer.counter("optpar.tasks") == 0

    def test_auto_serial_matches_process_decision(self):
        serial = _session(opt_workers=2, opt_backend="process")
        forced = _session(opt_workers=2, opt_backend="process",
                          auto_serial_points=0)
        a1 = _linreg_args(serial)
        a2 = _linreg_args(forced)
        r1 = serial.run("LinregDS", a1)
        r2 = forced.run("LinregDS", a2)
        assert r1.resource == r2.resource
        assert r1.optimizer_result.cost == r2.optimizer_result.cost
