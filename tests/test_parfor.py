"""Tests for task-parallel (parfor) loops — the paper's Section 6
future-work item: degree of parallelism interacts with memory budgets."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.compiler import statement_blocks as SB
from repro.compiler.pipeline import PARFOR_MAX_LOCAL_DOP, parfor_dop
from repro.cost import CostModel
from repro.dml import parse
from repro.runtime import Interpreter, SimulatedHDFS

META = {"X": MatrixCharacteristics(10**6, 100, 10**8)}


def compiled_loop(keyword, iterations=8, cp_mb=4096):
    source = f"""
X = read($X)
acc = 0
{keyword} (i in 1:{iterations}) {{
  v = X %*% matrix(1, rows=ncol(X), cols=1)
  acc = acc + sum(v) / {iterations}
}}
print(acc)
"""
    return compile_program(source, {"X": "X"}, META,
                           ResourceConfig(cp_mb, 1024))


def loop_block(compiled):
    return [
        b for b in compiled.block_program.blocks
        if isinstance(b, SB.ForBlock)
    ][0]


class TestParsing:
    def test_parfor_flag_set(self):
        program = parse("parfor (i in 1:4) { s = i }")
        assert program.statements[0].parallel

    def test_plain_for_not_parallel(self):
        program = parse("for (i in 1:4) { s = i }")
        assert not program.statements[0].parallel


class TestCompilation:
    def test_dop_bounded_by_trip_count(self):
        compiled = compiled_loop("parfor", iterations=3)
        assert parfor_dop(loop_block(compiled)) == 3

    def test_dop_bounded_by_worker_cap(self):
        compiled = compiled_loop("parfor", iterations=100)
        assert parfor_dop(loop_block(compiled)) == PARFOR_MAX_LOCAL_DOP

    def test_budget_divisor_inside_parfor(self):
        compiled = compiled_loop("parfor", iterations=8)
        body_blocks = [
            b for b in loop_block(compiled).last_level_blocks()
        ]
        assert all(b.budget_divisor == 8 for b in body_blocks)

    def test_budget_divisor_serial_loop(self):
        compiled = compiled_loop("for", iterations=8)
        body_blocks = list(loop_block(compiled).last_level_blocks())
        assert all(b.budget_divisor == 1 for b in body_blocks)

    def test_nested_parfor_multiplies(self):
        source = """
X = read($X)
parfor (i in 1:4) {
  parfor (j in 1:2) {
    s = sum(X) * i * j
  }
}
"""
        compiled = compile_program(source, {"X": "X"}, META,
                                   ResourceConfig(4096, 1024))
        inner = [
            b for b in compiled.last_level_blocks() if b.budget_divisor == 8
        ]
        assert inner

    def test_parallelism_pushes_work_to_mr(self):
        """The paper's Section 6 interaction: with k workers sharing the
        CP budget, per-worker operations stop fitting and compile to MR
        — the serial loop keeps them in CP."""
        serial = compiled_loop("for", iterations=8, cp_mb=4096)
        parallel = compiled_loop("parfor", iterations=8, cp_mb=4096)

        def body_mr_jobs(compiled):
            return sum(
                b.plan.num_mr_jobs
                for b in loop_block(compiled).last_level_blocks()
            )

        assert body_mr_jobs(serial) == 0  # 800 MB X fits 2.8 GB budget
        assert body_mr_jobs(parallel) > 0  # but not 2.8/8 GB per worker


class TestCostAndExecution:
    def test_parallel_loop_estimated_cheaper(self):
        cm = CostModel(paper_cluster())
        rc = ResourceConfig(30000, 1024)  # large enough either way
        serial = compiled_loop("for", cp_mb=30000)
        parallel = compiled_loop("parfor", cp_mb=30000)
        serial_cost = cm.estimate_program(serial, rc)
        parallel_cost = cm.estimate_program(parallel, rc)
        assert parallel_cost < serial_cost

    def test_execution_speedup_and_correct_values(self):
        rc = ResourceConfig(30000, 1024)
        results = {}
        for keyword in ("for", "parfor"):
            hdfs = SimulatedHDFS(sample_cap=64)
            hdfs.create_dense_input("X", 10**6, 100, seed=1)
            compiled = compile_program(
                f"""
X = read($X)
acc = 0
{keyword} (i in 1:8) {{
  v = X %*% matrix(1, rows=ncol(X), cols=1)
  acc = acc + sum(v) / 8
}}
print(acc)
""",
                {"X": "X"}, hdfs.input_meta(), rc,
            )
            interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64)
            results[keyword] = interp.run(compiled, rc)
        # identical values (iterations are independent)
        assert results["for"].prints == results["parfor"].prints
        # but the parallel loop finishes faster
        assert (
            results["parfor"].total_time < results["for"].total_time
        )
        assert results["parfor"].breakdown.get("parfor_speedup", 0) < 0
