"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    MatrixCharacteristics,
    binary_nnz_estimate,
    estimate_matrix_memory,
    mult_nnz_estimate,
)
from repro.cluster import ResourceConfig
from repro.cluster.config import paper_cluster
from repro.dml.lexer import tokenize
from repro.optimizer.grids import equi_grid, exp_grid, hybrid_grid, memory_grid
from repro.runtime.kernels import execute_kernel
from repro.runtime.matrix import MatrixObject

dims = st.integers(min_value=0, max_value=10**8)
sparsities = st.floats(min_value=0.0, max_value=1.0)


class TestMatrixCharacteristics:
    @given(rows=dims, cols=dims, sparsity=sparsities)
    def test_memory_estimate_nonnegative_and_finite(self, rows, cols,
                                                    sparsity):
        est = estimate_matrix_memory(rows, cols, sparsity)
        assert est >= 0
        assert math.isfinite(est)

    @given(rows=dims, cols=dims)
    def test_unknown_dims_are_infinite(self, rows, cols):
        assert estimate_matrix_memory(None, cols) == math.inf
        assert estimate_matrix_memory(rows, None) == math.inf

    @given(rows=st.integers(1, 10**6), cols=st.integers(2, 10**4),
           sparsity=st.floats(0.0001, 0.3))
    def test_sparse_cheaper_than_dense(self, rows, cols, sparsity):
        sparse = estimate_matrix_memory(rows, cols, sparsity)
        dense = estimate_matrix_memory(rows, cols, 1.0)
        assert sparse <= dense

    @given(rows=st.integers(0, 10**6), cols=st.integers(0, 10**4))
    def test_sparsity_bounded(self, rows, cols):
        mc = MatrixCharacteristics(rows, cols, rows * cols)
        assert mc.sparsity is not None
        assert 0.0 <= mc.sparsity <= 1.0

    @given(
        lr=st.integers(1, 10**4), lc=st.integers(1, 100),
        rc=st.integers(1, 100),
        sp_l=st.floats(0.001, 1.0), sp_r=st.floats(0.001, 1.0),
    )
    def test_mult_nnz_bounded_by_dense(self, lr, lc, rc, sp_l, sp_r):
        left = MatrixCharacteristics(lr, lc, int(lr * lc * sp_l))
        right = MatrixCharacteristics(lc, rc, int(lc * rc * sp_r))
        nnz = mult_nnz_estimate(left, right)
        assert 0 <= nnz <= lr * rc

    @given(
        rows=st.integers(1, 1000), cols=st.integers(1, 100),
        nnz_l=st.integers(0, 1000), nnz_r=st.integers(0, 1000),
    )
    def test_binary_nnz_bounds(self, rows, cols, nnz_l, nnz_r):
        cells = rows * cols
        left = MatrixCharacteristics(rows, cols, min(nnz_l, cells))
        right = MatrixCharacteristics(rows, cols, min(nnz_r, cells))
        mult = binary_nnz_estimate(True, left, right)
        plus = binary_nnz_estimate(False, left, right)
        assert 0 <= mult <= cells
        assert mult <= plus <= cells


class TestLexerProperties:
    @given(st.text(alphabet="abcxyz_ 0123456789+-*/()<>=&|\n", max_size=80))
    def test_never_crashes_on_benign_alphabet(self, text):
        try:
            tokens = tokenize(text)
            assert tokens[-1].kind == "EOF"
        except Exception as exc:
            from repro.errors import DMLSyntaxError

            assert isinstance(exc, DMLSyntaxError)

    @given(st.integers(0, 10**9))
    def test_integers_round_trip(self, value):
        token = tokenize(str(value))[0]
        assert token.kind == "INT"
        assert int(token.text) == value

    @given(st.floats(min_value=0.001, max_value=10**6,
                     allow_nan=False, allow_infinity=False))
    def test_floats_round_trip(self, value):
        token = tokenize(repr(value))[0]
        assert token.kind == "DOUBLE"
        assert float(token.text) == pytest.approx(value)


class TestGridProperties:
    bounds = st.tuples(
        st.floats(256, 4096), st.floats(8192, 10**6)
    )

    @given(bounds, st.integers(2, 50))
    def test_equi_grid_sorted_in_bounds(self, b, m):
        lo, hi = b
        points = equi_grid(lo, hi, m)
        assert points == sorted(points)
        assert points[0] == lo and points[-1] == pytest.approx(hi)

    @given(bounds)
    def test_exp_grid_strictly_increasing(self, b):
        lo, hi = b
        points = exp_grid(lo, hi)
        assert all(x < y for x, y in zip(points, points[1:]))

    @given(bounds, st.lists(st.floats(1, 10**7), max_size=10))
    def test_memory_grid_subset_of_bounds(self, b, estimates):
        lo, hi = b
        points = memory_grid(lo, hi, estimates)
        assert all(lo <= p <= hi + 1e-6 for p in points)

    @given(bounds, st.lists(st.floats(1, 10**7), max_size=10))
    def test_hybrid_contains_extremes(self, b, estimates):
        lo, hi = b
        points = hybrid_grid(lo, hi, estimates)
        assert points[0] == lo
        assert points[-1] == pytest.approx(hi)


class TestKernelProperties:
    small = st.integers(2, 12)

    @given(rows=small, cols=small, seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_tsmm_matches_explicit_product(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        X = MatrixObject.from_sample(rng.normal(size=(rows, cols)))
        _, tsmm, _ = execute_kernel("tsmm", [X])
        _, explicit, _ = execute_kernel(
            "ba+*", [X, X], {"transpose_left": True}
        )
        assert np.allclose(tsmm, explicit)

    @given(rows=small, cols=small, seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_transpose_involution(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        X = MatrixObject.from_sample(rng.normal(size=(rows, cols)))
        _, once, mc = execute_kernel("r'", [X])
        back = MatrixObject(once, mc)
        _, twice, _ = execute_kernel("r'", [back])
        assert np.allclose(twice, X.data)

    @given(rows=small, seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_sum_of_ones_equals_logical_cells(self, rows, seed):
        logical = rows * 1000
        obj = MatrixObject.generate(
            logical, 3, min_value=1.0, max_value=1.0, sample_cap=rows
        )
        _, value, _ = execute_kernel("ua+", [obj])
        assert value == pytest.approx(logical * 3)

    @given(n=small, seed=st.integers(0, 50))
    @settings(max_examples=25)
    def test_solve_then_multiply_recovers_rhs(self, n, seed):
        rng = np.random.default_rng(seed)
        A = MatrixObject.from_sample(
            rng.normal(size=(n, n)) + n * np.eye(n)
        )
        b = MatrixObject.from_sample(rng.normal(size=(n, 1)))
        _, x, mc = execute_kernel("solve", [A, b])
        assert np.allclose(A.data @ x, b.data, atol=1e-6)

    @given(k=st.integers(1, 6), rows=st.integers(6, 30),
           seed=st.integers(0, 50))
    @settings(max_examples=25)
    def test_ctable_rows_sum_to_one(self, k, rows, seed):
        rng = np.random.default_rng(seed)
        labels = MatrixObject.from_sample(
            rng.integers(1, k + 1, size=(rows, 1)).astype(float)
        )
        idx = MatrixObject.from_sample(
            np.arange(1, rows + 1, dtype=float).reshape(-1, 1)
        )
        _, data, _ = execute_kernel("ctable", [idx, labels])
        assert np.allclose(data.sum(axis=1), 1.0)


class TestResourceConfigProperties:
    heaps = st.floats(512, 54613)

    @given(cp=heaps, mr=heaps)
    def test_budget_strictly_less_than_heap(self, cp, mr):
        rc = ResourceConfig(cp, mr)
        assert rc.cp_budget_bytes < cp * 1024 * 1024
        assert rc.mr_budget_bytes() < mr * 1024 * 1024

    @given(cp=heaps, mr=heaps)
    def test_container_at_least_heap(self, cp, mr):
        cluster = paper_cluster()
        assert cluster.container_mb_for_heap(cp) >= cp

    @given(cp=heaps)
    def test_footprint_monotone_in_cp(self, cp):
        smaller = ResourceConfig(cp, 512)
        larger = ResourceConfig(cp + 1, 512)
        assert smaller.footprint() < larger.footprint()


class TestPrinterRoundTrip:
    """parse(print(ast)) == ast over randomly generated expressions."""

    names = st.sampled_from(["a", "b", "c", "X", "Y"])
    operators = st.sampled_from(
        ["+", "-", "*", "/", "^", "%*%", "&", "|", "<", ">=", "=="]
    )

    @st.composite
    def expressions(draw, depth=0):
        import tests.test_properties as module

        self = module.TestPrinterRoundTrip
        if depth >= 3 or draw(st.booleans()):
            kind = draw(st.integers(0, 2))
            if kind == 0:
                return draw(self.names)
            if kind == 1:
                return str(draw(st.integers(0, 99)))
            return f"f({draw(self.names)})"
        left = draw(self.expressions(depth + 1))
        right = draw(self.expressions(depth + 1))
        op = draw(self.operators)
        if draw(st.booleans()):
            return f"({left} {op} {right})"
        return f"{left} {op} {right}"

    @given(expressions())
    @settings(max_examples=60)
    def test_random_expressions_round_trip(self, text):
        import dataclasses

        from repro.dml import parse
        from repro.dml.printer import print_program
        from repro.errors import DMLSyntaxError

        def equal(a, b):
            if type(a) is not type(b):
                return False
            if isinstance(a, (list, tuple)):
                return len(a) == len(b) and all(
                    equal(x, y) for x, y in zip(a, b)
                )
            if isinstance(a, dict):
                return set(a) == set(b) and all(
                    equal(a[k], b[k]) for k in a
                )
            if dataclasses.is_dataclass(a):
                return all(
                    f.name == "line"
                    or equal(getattr(a, f.name), getattr(b, f.name))
                    for f in dataclasses.fields(a)
                )
            return a == b

        try:
            first = parse(f"x = {text}")
        except DMLSyntaxError:
            return  # generated text happened to be invalid; skip
        printed = print_program(first)
        second = parse(printed)
        assert equal(first, second), printed
