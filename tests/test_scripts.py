"""Tests for the five bundled ML scripts (Table 1)."""

import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.dml import parse, validate
from repro.runtime import Interpreter, SimulatedHDFS
from repro.scripts import SCRIPTS, load_script, script_spec
from repro.workloads import prepare_inputs, scenario

ALL_SCRIPTS = sorted(SCRIPTS)


@pytest.mark.parametrize("name", ALL_SCRIPTS)
def test_scripts_parse_and_validate(name):
    source = load_script(name)
    program = parse(source)
    spec = script_spec(name)
    args = {key: "file" for key in ("X", "Y", "B", "model")}
    args.update(spec.defaults)
    result = validate(program, args)
    assert "X" in result.cmdline_args


@pytest.mark.parametrize("name", ALL_SCRIPTS)
def test_scripts_compile(name):
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, name, scenario("XS", cols=100))
    compiled = compile_program(
        load_script(name), args, hdfs.input_meta(), ResourceConfig(2048, 512)
    )
    assert compiled.num_blocks() >= 5


@pytest.mark.parametrize("name", ALL_SCRIPTS)
def test_scripts_execute_end_to_end(name):
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, name, scenario("XS", cols=100))
    rc = ResourceConfig(4096, 1024)
    compiled = compile_program(load_script(name), args, hdfs.input_meta(), rc)
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64).run(
        compiled, rc
    )
    assert result.total_time > 0
    assert result.prints  # every script reports statistics
    # every script writes its model
    out_arg = {"L2SVM": "model", "KMeans": "C", "PCA": "V"}.get(name, "B")
    assert hdfs.exists(args[out_arg])


def test_unknown_script_raises():
    with pytest.raises(KeyError):
        load_script("NoSuchScript")


def test_table1_unknowns_flags():
    """MLogreg and GLM face unknown sizes at initial compilation
    (Table 1's '?' column); the others do not."""
    for name in ALL_SCRIPTS:
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, name, scenario("XS", cols=100))
        compiled = compile_program(
            load_script(name), args, hdfs.input_meta()
        )
        has_unknowns = any(
            block.requires_recompile
            for block in compiled.last_level_blocks()
        )
        assert has_unknowns == script_spec(name).has_unknowns, name


def test_l2svm_accuracy_is_sane():
    hdfs = SimulatedHDFS(sample_cap=256)
    args = prepare_inputs(hdfs, "L2SVM", scenario("S", cols=100))
    rc = ResourceConfig(8192, 1024)
    compiled = compile_program(load_script("L2SVM"), args, hdfs.input_meta(), rc)
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=256).run(
        compiled, rc
    )
    accuracy_line = [p for p in result.prints if "accuracy" in p][0]
    accuracy = float(accuracy_line.split(": ")[1])
    assert 0 <= accuracy <= 100


def test_mlogreg_reports_k():
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, "MLogreg", scenario("XS", cols=100),
                          num_classes=4)
    rc = ResourceConfig(8192, 1024)
    compiled = compile_program(
        load_script("MLogreg"), args, hdfs.input_meta(), rc
    )
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64).run(
        compiled, rc
    )
    assert any("k=4" in line for line in result.prints)


def test_glm_deviance_decreases():
    hdfs = SimulatedHDFS(sample_cap=128)
    args = prepare_inputs(hdfs, "GLM", scenario("XS", cols=100))
    rc = ResourceConfig(8192, 1024)
    compiled = compile_program(load_script("GLM"), args, hdfs.input_meta(), rc)
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=128).run(
        compiled, rc
    )
    explained = [
        float(p.split("=")[1])
        for p in result.prints
        if p.startswith("DEVIANCE_EXPLAINED")
    ][0]
    assert explained > 0


def test_program_characteristics_table():
    """Our analogue of Table 1: block counts per script."""
    for name in ALL_SCRIPTS:
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, name, scenario("XS", cols=100))
        compiled = compile_program(load_script(name), args, hdfs.input_meta())
        lines = len(load_script(name).splitlines())
        blocks = compiled.num_blocks()
        assert lines > 30
        assert blocks >= 5
    # GLM is by far the largest program
    glm_hdfs = SimulatedHDFS(sample_cap=64)
    glm_args = prepare_inputs(glm_hdfs, "GLM", scenario("XS", cols=100))
    glm = compile_program(load_script("GLM"), glm_args, glm_hdfs.input_meta())
    svm_hdfs = SimulatedHDFS(sample_cap=64)
    svm_args = prepare_inputs(svm_hdfs, "L2SVM", scenario("XS", cols=100))
    svm = compile_program(load_script("L2SVM"), svm_args, svm_hdfs.input_meta())
    assert glm.num_blocks() > 2 * svm.num_blocks()


@pytest.mark.parametrize("dfam,link", [(1, 1), (2, 2), (3, 3)])
def test_glm_families_execute(dfam, link):
    """GLM supports gaussian/identity, poisson/log, and binomial/logit."""
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, "GLM", scenario("XS", cols=50),
                          glm_family=3 if dfam == 3 else 2)
    args["dfam"] = dfam
    rc = ResourceConfig(8192, 1024)
    compiled = compile_program(load_script("GLM"), args, hdfs.input_meta(), rc)
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64).run(
        compiled, rc
    )
    header = [p for p in result.prints if p.startswith("GLM:")][0]
    assert f"family={dfam}" in header
    assert f"link={link}" in header
    deviance = [
        float(p.split("=")[1])
        for p in result.prints
        if p.startswith("DEVIANCE=")
    ][0]
    assert deviance >= 0 or dfam == 1


def test_glm_binomial_categorical_labels_expand():
    """Binomial GLM on 1/2 labels goes through the table() expansion —
    the data-dependent unknown the adaptation experiments rely on."""
    hdfs = SimulatedHDFS(sample_cap=64)
    args = prepare_inputs(hdfs, "GLM", scenario("XS", cols=50), glm_family=3)
    rc = ResourceConfig(8192, 1024)
    compiled = compile_program(load_script("GLM"), args, hdfs.input_meta(), rc)
    result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=64).run(
        compiled, rc
    )
    assert result.recompilations > 0
    assert any("family=3" in p for p in result.prints)
