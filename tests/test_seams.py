"""Seam tests: smaller behaviours across module boundaries that the
main suites do not pin down."""

import numpy as np
import pytest

from repro.cluster import ResourceConfig, paper_cluster
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.optimizer import ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import MatrixObject
from repro.tools.cli import main


class TestCLIWhatIf:
    def test_whatif_renders_heatmap(self, capsys):
        code = main([
            "whatif", "LinregCG",
            "--gen", "gx=1000000x100", "--gen", "gy=1000000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--cp", "1,20", "--mr", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cheapest cell" in out
        assert "CP" in out and "MR" in out


class TestOptimizerDeterminism:
    def test_same_inputs_same_choice(self):
        cluster = paper_cluster()
        meta = {"X": MatrixCharacteristics(10**6, 1000, 10**9)}
        source = "X = read($X)\nZ = t(X) %*% X\nprint(sum(Z))"
        choices = []
        for _ in range(2):
            compiled = compile_program(source, {"X": "X"}, meta)
            result = ResourceOptimizer(cluster).optimize(compiled)
            choices.append(
                (result.resource.cp_heap_mb, result.resource.max_mr_heap_mb,
                 round(result.cost, 6))
            )
        assert choices[0] == choices[1]

    def test_cost_ties_resolve_to_minimum(self):
        # tiny data: every configuration costs the same -> minimal wins
        cluster = paper_cluster()
        meta = {"X": MatrixCharacteristics(100, 10, 1000)}
        compiled = compile_program(
            "X = read($X)\nprint(sum(X))", {"X": "X"}, meta
        )
        result = ResourceOptimizer(cluster).optimize(compiled)
        assert result.resource.cp_heap_mb == cluster.min_heap_mb


class TestInterpreterSeams:
    def test_temps_cleaned_between_blocks(self):
        hdfs = SimulatedHDFS(sample_cap=32)
        obj = MatrixObject.from_sample(np.ones((8, 4)))
        hdfs.put("X", obj.mc, obj.data)
        rc = ResourceConfig(2048, 512)
        source = """
X = read($X)
a = sum(X)
if (a > 0) { b = a * 2 } else { b = 0 }
print(b)
"""
        compiled = compile_program(source, {"X": "X"}, hdfs.input_meta(), rc)
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        interp.run(compiled, rc)
        leftovers = [
            name for name in interp._frames[0] if name.startswith("_mVar")
        ]
        assert not leftovers

    def test_function_temps_do_not_leak_into_main(self):
        hdfs = SimulatedHDFS(sample_cap=32)
        obj = MatrixObject.from_sample(np.ones((8, 4)))
        hdfs.put("X", obj.mc, obj.data)
        rc = ResourceConfig(2048, 512)
        source = """
double_sum = function(Matrix[double] A) return (double s) {
  B = A * 2
  s = sum(B)
}
X = read($X)
print(double_sum(X))
"""
        compiled = compile_program(source, {"X": "X"}, hdfs.input_meta(), rc)
        interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32)
        result = interp.run(compiled, rc)
        assert result.prints == ["64.0"]
        assert "B" not in interp._frames[0]

    def test_scratch_paths_unique(self):
        interp = Interpreter(paper_cluster(), hdfs=SimulatedHDFS())
        interp._scratch_counter = 0
        paths = {interp._scratch_path("x") for _ in range(100)}
        assert len(paths) == 100

    def test_final_resource_reported(self):
        hdfs = SimulatedHDFS(sample_cap=32)
        hdfs.create_dense_input("X", 1000, 10)
        rc = ResourceConfig(1024, 512)
        compiled = compile_program(
            "X = read($X)\nprint(sum(X))", {"X": "X"}, hdfs.input_meta(), rc
        )
        result = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=32).run(
            compiled, rc
        )
        assert result.final_resource.cp_heap_mb == 1024


class TestSparkBreakdown:
    def test_breakdown_components(self):
        from repro.cluster.spark import SparkRuntime
        from repro.workloads import scenario

        result = SparkRuntime().run_l2svm(scenario("M"), "hybrid")
        assert set(result.breakdown) >= {"startup", "initial_scan",
                                         "iterations"}
        assert result.total_time == pytest.approx(
            sum(result.breakdown.values()), rel=0.01
        )

    def test_more_iterations_cost_more(self):
        from repro.cluster.spark import SparkRuntime
        from repro.workloads import scenario

        rt = SparkRuntime()
        five = rt.run_l2svm(scenario("L"), "hybrid", outer_iterations=5)
        ten = rt.run_l2svm(scenario("L"), "hybrid", outer_iterations=10)
        assert ten.total_time > five.total_time


class TestBufferPoolSeams:
    def test_retain_only_keeps_live(self):
        from repro.cost.constants import DEFAULT_PARAMETERS
        from repro.runtime.bufferpool import BufferPool

        pool = BufferPool(10**9, DEFAULT_PARAMETERS, lambda s, c: None)
        live = MatrixObject.from_sample(np.ones((4, 4)))
        dead = MatrixObject.from_sample(np.ones((4, 4)))
        pool.put(live)
        pool.put(dead)
        pool.retain_only({id(live)})
        assert pool.contains(live)
        assert not pool.contains(dead)
        assert not dead.in_memory
