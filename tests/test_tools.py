"""Tests for the explain tooling and the command-line interface."""

import pytest

from repro.cluster import ResourceConfig
from repro.compiler import compile_program
from repro.common import MatrixCharacteristics
from repro.tools.cli import build_parser, main
from repro.tools.explain import explain_program

META = {"X": MatrixCharacteristics(10**6, 100, 10**8)}
SOURCE = """
X = read($X)
i = 0
while (i < 3) {
  s = sum(X %*% matrix(1, rows=ncol(X), cols=1))
  i = i + 1
}
print(s)
"""


class TestExplain:
    def compiled(self, cp=512):
        return compile_program(SOURCE, {"X": "X"}, META,
                               ResourceConfig(cp, 512))

    def test_runtime_level_shows_instructions(self):
        text = explain_program(self.compiled(), level="runtime")
        assert "PROGRAM" in text
        assert "WHILE" in text
        assert "CP" in text or "MR-" in text

    def test_hops_level_shows_characteristics(self):
        text = explain_program(self.compiled(), level="hops")
        assert "1000000 x 100" in text
        assert "exec=" in text

    def test_mr_jobs_rendered_with_steps(self):
        text = explain_program(self.compiled(cp=512), level="runtime")
        assert "MR-GMR" in text
        assert "[map]" in text or "[reduce]" in text

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            explain_program(self.compiled(), level="nope")

    def test_functions_rendered(self):
        source = """
f = function(double a) return (double b) { b = a * 2 }
x = f(3)
print(x)
"""
        compiled = compile_program(source, {}, {}, ResourceConfig(512, 512))
        text = explain_program(compiled)
        assert "FUNCTION f" in text


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("run", "optimize", "explain", "scripts", "demo"):
            assert command in parser.format_help()

    def test_scripts_listing(self, capsys):
        assert main(["scripts"]) == 0
        out = capsys.readouterr().out
        for name in ("LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"):
            assert name in out

    def test_run_with_generated_inputs(self, capsys):
        code = main([
            "run", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--static", "2048,512",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "R2=" in out
        assert "simulated time" in out

    def test_optimize_prints_profile(self, capsys):
        code = main([
            "optimize", "LinregCG",
            "--gen", "gx=1000000x100", "--gen", "gy=1000000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen configuration" in out
        assert "CP profile" in out

    def test_opt_alias_with_workers(self, capsys):
        code = main([
            "opt", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--workers", "2", "--auto-serial-points", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen configuration" in out
        assert "backend: process (2 workers" in out

    def test_opt_small_grid_auto_falls_back_to_serial(self, capsys):
        """Without --auto-serial-points 0, the XS-sized grid is below
        the default threshold and enumeration stays serial."""
        code = main([
            "opt", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: serial" in out

    def test_optimize_serial_backend_reported(self, capsys):
        code = main([
            "optimize", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--opt-backend", "serial",
        ])
        assert code == 0
        assert "backend: serial" in capsys.readouterr().out

    def test_run_with_thread_backend(self, capsys):
        code = main([
            "run", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
            "--workers", "2", "--opt-backend", "thread",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer: thread (2 workers" in out

    def test_explain_command(self, capsys):
        code = main([
            "explain", "LinregDS",
            "--gen", "gx=50000x100", "--gen", "gy=50000x1",
            "-arg", "X=gx", "-arg", "Y=gy", "-arg", "B=out",
        ])
        assert code == 0
        assert "PROGRAM" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        code = main(["demo", "LinregDS", "--size", "XS", "--cols", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "configuration:" in out

    def test_bad_arg_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "LinregDS", "-arg", "not-a-pair"])

    def test_missing_script_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch.dml"])

    def test_bad_static_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "LinregDS", "--static", "2048"])


class TestWhatIf:
    def compiled_cg(self):
        from repro.common import MatrixCharacteristics

        source = """
X = read($X)
p = matrix(1, rows=ncol(X), cols=1)
i = 0
while (i < 5) {
  p = t(X) %*% (X %*% p) * 0.0001
  i = i + 1
}
print(sum(p))
"""
        meta = {"X": MatrixCharacteristics(10**6, 1000, 10**9)}
        return compile_program(source, {"X": "X"}, meta)

    def test_heatmap_shape(self):
        from repro.cluster import paper_cluster
        from repro.tools import what_if_heatmap

        heatmap = what_if_heatmap(
            paper_cluster(), self.compiled_cg(),
            [1024, 20480], [512, 4096],
        )
        assert len(heatmap.costs) == 2
        assert len(heatmap.costs[0]) == 2
        assert all(c > 0 for row in heatmap.costs for c in row)

    def test_cg_pattern_visible(self):
        from repro.cluster import paper_cluster
        from repro.tools import what_if_heatmap

        heatmap = what_if_heatmap(
            paper_cluster(), self.compiled_cg(),
            [1024, 20480], [512],
        )
        # iterative CG: large CP far cheaper
        assert heatmap.cost_at(20480, 512) < heatmap.cost_at(1024, 512) / 2

    def test_cheapest_tie_breaks_to_minimal(self):
        from repro.tools.whatif import WhatIfHeatmap

        heatmap = WhatIfHeatmap(
            cp_points_mb=[512, 1024],
            mr_points_mb=[512, 1024],
            costs=[[10.0, 10.0], [10.0, 10.0]],
        )
        cp, mr, cost = heatmap.cheapest()
        assert (cp, mr, cost) == (512, 512, 10.0)

    def test_render_contains_grid(self):
        from repro.cluster import paper_cluster
        from repro.tools import what_if_heatmap

        heatmap = what_if_heatmap(
            paper_cluster(), self.compiled_cg(), [1024], [512],
        )
        text = heatmap.render("demo")
        assert "demo" in text
        assert "CP" in text and "MR" in text

    def test_profile_matches_heatmap(self):
        from repro.cluster import paper_cluster
        from repro.tools import what_if_heatmap, what_if_profile

        compiled = self.compiled_cg()
        profile = what_if_profile(
            paper_cluster(), compiled, [1024, 20480], mr_mb=512,
        )
        heatmap = what_if_heatmap(
            paper_cluster(), compiled, [1024, 20480], [512],
        )
        assert [c for _, c in profile] == heatmap.costs[0]
