"""Unit tests for scenarios, data generation, and baselines."""

import pytest

from repro.cluster import paper_cluster
from repro.runtime import SimulatedHDFS
from repro.workloads import (
    paper_baselines,
    paper_scenarios,
    prepare_inputs,
    scenario,
)
from repro.workloads.baselines import max_parallel_task_heap_mb


class TestScenarios:
    def test_cell_counts(self):
        assert scenario("XS").cells == 10**7
        assert scenario("XL").cells == 10**11

    def test_rows_from_cols(self):
        assert scenario("M", cols=1000).rows == 10**6
        assert scenario("M", cols=100).rows == 10**7

    def test_dense_bytes(self):
        # the paper: scenario M dense corresponds to 8 GB
        assert scenario("M").dense_bytes == 8 * 10**9

    def test_sparse_flag(self):
        assert scenario("S", sparse=True).sparsity == 0.01
        assert not scenario("S").is_sparse

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            scenario("XXL")

    def test_paper_scenarios_grid(self):
        combos = paper_scenarios(("XS", "S"))
        assert set(combos) == {
            "dense1000", "sparse1000", "dense100", "sparse100",
        }
        assert all(len(v) == 2 for v in combos.values())

    def test_label_string(self):
        assert scenario("M", cols=100, sparse=True).label == "M sparse100"


class TestDatagen:
    @pytest.mark.parametrize(
        "script", ["LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"]
    )
    def test_inputs_created_for_each_script(self, script):
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, script, scenario("XS", cols=100))
        assert hdfs.exists(args["X"])
        assert hdfs.exists(args["Y"])

    def test_defaults_included(self):
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, "L2SVM", scenario("XS", cols=100))
        assert args["reg"] == 0.01
        assert args["maxiter"] == 5

    def test_svm_labels_are_binary(self):
        import numpy as np

        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, "L2SVM", scenario("XS", cols=100))
        values = set(np.unique(hdfs.get(args["Y"]).data))
        assert values == {0.0, 1.0}

    def test_glm_poisson_counts_nonnegative(self):
        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(hdfs, "GLM", scenario("XS", cols=100))
        assert hdfs.get(args["Y"]).data.min() >= 0

    def test_glm_binomial_labels(self):
        import numpy as np

        hdfs = SimulatedHDFS(sample_cap=64)
        args = prepare_inputs(
            hdfs, "GLM", scenario("XS", cols=100), glm_family=3
        )
        assert set(np.unique(hdfs.get(args["Y"]).data)) == {1.0, 2.0}

    def test_unknown_script_raises(self):
        hdfs = SimulatedHDFS()
        with pytest.raises(Exception):
            prepare_inputs(hdfs, "DecisionTree", scenario("XS"))


class TestBaselines:
    def test_four_baselines(self):
        baselines = paper_baselines(paper_cluster())
        assert set(baselines) == {"B-SS", "B-LS", "B-SL", "B-LL"}

    def test_sizes_match_paper(self):
        cluster = paper_cluster()
        baselines = paper_baselines(cluster)
        assert baselines["B-SS"].cp_heap_mb == 512
        # 53.3 GB CP (80 GB / 1.5)
        assert baselines["B-LS"].cp_heap_mb == pytest.approx(
            53.3 * 1024, rel=0.01
        )
        # 4.4 GB task heap (80 GB / 12 / 1.5)
        assert baselines["B-LL"].mr_heap_mb == pytest.approx(
            4.44 * 1024, rel=0.01
        )

    def test_max_parallel_task_heap_uses_all_cores(self):
        cluster = paper_cluster()
        heap = max_parallel_task_heap_mb(cluster)
        per_node = cluster.node_physical_cores * heap * 1.5
        assert per_node == pytest.approx(cluster.node_memory_mb)
